#include "core/cluster.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <mutex>

#include "common/log.hpp"
#include "dsm/placement.hpp"
#include "dsm/wire.hpp"
#include "isa/syscall_abi.hpp"
#include "sys/wire.hpp"

namespace dqemu::core {
namespace {

using time_literals::kSec;

/// Memory layout knob (see DESIGN.md "layout"): a 1 MiB main stack sits
/// below the shadow pool, anonymous mmaps grow from the middle, and brk
/// grows from the end of the static image. The shadow-pool geometry itself
/// comes from dsm::home_layout — the one source the placement layer and
/// the memory layout share.
constexpr std::uint32_t kMainStackBytes = 1u << 20;

}  // namespace

Cluster::Cluster(ClusterConfig config, trace::Tracer* tracer)
    : config_(config),
      tracer_(tracer),
      queue_(),
      network_(queue_, config.net, config.total_nodes(), &stats_, tracer,
               config.faults),
      home_map_(config.dsm, dsm::home_layout(config)) {
  const Status valid = config_.validate();
  assert(valid.is_ok() && "invalid ClusterConfig");
  (void)valid;
  queue_.set_tracer(tracer_);

  Node::Hooks hooks;
  hooks.fatal = [this](std::string message) {
    // Node fatal hooks fire inside whichever window is executing the node,
    // so in parallel mode this races with other workers' hooks.
    const std::lock_guard<std::mutex> lock(fatal_mutex_);
    if (!fatal_.has_value()) fatal_ = std::move(message);
  };
  hooks.thread_exited = [](GuestTid) {};

  const std::uint32_t total = config_.total_nodes();

#if DQEMU_PARALLEL_SIM_ENABLED
  if (config_.sim.host_threads > 1 && total > 1) {
    // Partitioned kernel: node 0 (and with it the directory, the syscall
    // engine and the serving plane, which all captured queue_ below) stays
    // on queue_; every slave node gets a private queue. Cross-node traffic
    // becomes barrier-drained posts (Network::bind_queues).
    queues_.reserve(total);
    queues_.push_back(&queue_);
    slave_queues_.reserve(total - 1);
    for (NodeId id = 1; id < total; ++id) {
      slave_queues_.push_back(std::make_unique<sim::EventQueue>());
      slave_queues_.back()->set_tracer(tracer_);
      queues_.push_back(slave_queues_.back().get());
    }
    network_.bind_queues(queues_);
    if (tracer_ != nullptr) tracer_->configure_shards(total);
    stats_.configure_shards(total);
  }
#else
  if (config_.sim.host_threads > 1) {
    // Runtime gate on, compile-time gate off: refuse loudly rather than
    // silently fall back to the serial kernel.
    fatal_ =
        "host_threads > 1 requested but the parallel scheduler is compiled "
        "out (DQEMU_ENABLE_PARALLEL_SIM=OFF)";
  }
#endif

  nodes_.reserve(total);
  for (NodeId id = 0; id < total; ++id) {
    sim::EventQueue& node_queue = queues_.empty() ? queue_ : *queues_[id];
    nodes_.push_back(std::make_unique<Node>(id, config_, node_queue, network_,
                                            &stats_, hooks, tracer_));
  }

  // Shadow pool: top of the guest space (geometry from the placement layer).
  const dsm::HomeLayout& layout = home_map_.layout();
  const bool sharded = home_map_.sharded();

  if (!config_.single_node_baseline) {
    dsm::Directory::Params params;
    params.dsm = config_.dsm;
    params.machine = config_.machine;
    params.node_count = total;
    params.shadow_pool_first_page =
        static_cast<std::uint32_t>(layout.shadow_first_page);
    params.shadow_pool_page_count =
        sharded ? 0 : static_cast<std::uint32_t>(layout.shadow_page_count);
    params.self = kMasterNode;
    params.sharded = sharded;
    directory_.emplace(network_, queue_, nodes_[kMasterNode]->space(), params,
                       &stats_, tracer_);
    if (sharded) {
      // The sharded Directory ctor skips the single-master boot claim, but
      // the master still owns every byte at boot (it loads the image): the
      // shards' entries default to owner == master, so their first
      // transaction recalls the boot content from the master's client over
      // the ordinary wire protocol. The master's own shard gets an empty
      // shadow slice — it never splits pages — so the whole pool is split
      // among the slave homes.
      mem::AddressSpace& master_space = nodes_[kMasterNode]->space();
      master_space.set_all_access(mem::PageAccess::kReadWrite);
      for (std::uint64_t i = 0; i < layout.shadow_page_count; ++i) {
        master_space.set_access(
            static_cast<std::uint32_t>(layout.shadow_first_page + i),
            mem::PageAccess::kNone);
      }
      home_shards_.resize(total);
      futex_homes_.resize(total);
      for (NodeId id = 1; id < total; ++id) {
        sim::EventQueue& node_queue = queues_.empty() ? queue_ : *queues_[id];
        dsm::Directory::Params sp = params;
        sp.machine = config_.machine_for(id);
        sp.self = id;
        sp.shadow_pool_first_page =
            static_cast<std::uint32_t>(layout.slice_first(id));
        sp.shadow_pool_page_count =
            static_cast<std::uint32_t>(layout.slice_count(id));
        home_shards_[id] = std::make_unique<dsm::Directory>(
            network_, node_queue, nodes_[id]->space(), sp, &stats_, tracer_);
        futex_homes_[id] = std::make_unique<sys::FutexService>(
            id, network_, node_queue, config_.machine_for(id),
            config_.dbt.syscall_service_cycles, &stats_, tracer_);
        futex_homes_[id]->configure_locking(config_.sys);
        futex_homes_[id]->configure_faults(config_.faults.request_timeout);
        nodes_[id]->host_home_shard(home_shards_[id].get(),
                                    futex_homes_[id].get());
      }
    }
  } else {
    // Baseline "QEMU" mode: one node, no DSM, direct memory access.
    nodes_[kMasterNode]->space().set_all_access(mem::PageAccess::kReadWrite);
  }

  syscalls_.emplace(network_, queue_, config_.machine,
                    config_.dbt.syscall_service_cycles, &stats_, tracer_);
  syscalls_->configure_locking(config_.sys);
  syscalls_->configure_faults(config_.faults);
  if (sharded) {
    // Thread-exit ctid wakes must reach whichever home arbitrates the
    // futex. Resolved against the *original* address's page, like every
    // other futex routing decision (see Node::futex_home).
    syscalls_->set_futex_home([this](GuestAddr addr) {
      return home_map_.home_of(addr / config_.machine.page_size);
    });
  }
  sys::MasterSyscalls::Hooks sys_hooks;
  sys_hooks.on_clone = [this](const sys::SyscallRequest& req) {
    return on_clone(req);
  };
  sys_hooks.on_exit = [this](const sys::SyscallRequest& req) {
    on_thread_exit(req);
  };
  sys_hooks.on_exit_group = [this](std::uint32_t status) {
    if (!exit_code_.has_value()) exit_code_ = status;
  };
  syscalls_->set_hooks(std::move(sys_hooks));

  if (config_.serve.enabled) {
    if (!serve::compiled_in()) {
      // Runtime gate on, compile-time gate off: refuse loudly rather than
      // silently run the batch semantics of a serving config.
      fatal_ = "serving requested but compiled out (DQEMU_ENABLE_SERVING=OFF)";
    } else {
      serving_.emplace(
          queue_, config_.serve, &stats_, tracer_,
          [this](NodeId dst, GuestTid tid, std::int64_t result,
                 std::uint64_t flow) {
            // Every dispatch/EOF pays the same manager service delay as any
            // other syscall response.
            syscalls_->send_response(dst, tid, result, {}, flow);
          });
      syscalls_->set_serve_handler([this](const sys::SyscallRequest& req) {
        if (req.num == isa::Sys::kServeGet) {
          serving_->on_get_request(req.src, req.tid, req.flow);
        } else {
          serving_->on_done(req.src, req.tid, req.args[0], req.flow);
        }
      });
    }
  }

  // Message routing: master traffic splits between the directory, the
  // syscall engine, migration bookkeeping and the node itself.
  network_.attach(kMasterNode,
                  [this](net::Message msg) { master_handler(msg); });
  for (NodeId id = 1; id < total; ++id) {
    Node* node = nodes_[id].get();
    network_.attach(id,
                    [node](net::Message msg) { node->handle_message(msg); });
  }
}

void Cluster::master_handler(const net::Message& msg) {
  if (home_map_.sharded() && relay_if_misdirected(msg)) return;
  switch (msg.type) {
    case static_cast<std::uint32_t>(dsm::DsmMsg::kReadReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kWriteReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAck):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kInvAckDiff):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kDowngradeAckDiff):
      assert(directory_.has_value());
      directory_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(sys::SysMsg::kSyscallReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReq):
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReturn):
      syscalls_->handle_message(msg);
      return;
    case static_cast<std::uint32_t>(CoreMsg::kMigrateDone):
      thread_node_[static_cast<GuestTid>(msg.a)] =
          static_cast<NodeId>(msg.b);
      return;
    default:
      nodes_[kMasterNode]->handle_message(msg);
      return;
  }
}

bool Cluster::relay_if_misdirected(const net::Message& msg) {
  const std::uint32_t page_size = config_.machine.page_size;
  NodeId home = kMasterNode;
  switch (msg.type) {
    case static_cast<std::uint32_t>(dsm::DsmMsg::kReadReq):
    case static_cast<std::uint32_t>(dsm::DsmMsg::kWriteReq):
      home = home_map_.home_for(msg.a, msg.src);
      break;
    case static_cast<std::uint32_t>(sys::SysMsg::kSyscallReq): {
      // Only futex delegation is home-routed; every other syscall is the
      // master's to serve. args[0] (the futex address) is the first LE
      // word of the request payload.
      if (static_cast<isa::Sys>(msg.a) != isa::Sys::kFutex) return false;
      assert(msg.data.size() >= sizeof(std::uint32_t));
      std::uint32_t addr = 0;
      std::memcpy(&addr, msg.data.data(), sizeof(addr));
      home = home_map_.home_for(addr / page_size, msg.src);
      break;
    }
    case static_cast<std::uint32_t>(sys::SysMsg::kLeaseReq):
      home = home_map_.home_for(
          static_cast<GuestAddr>(msg.a) / page_size, msg.src);
      break;
    default:
      return false;
  }
  if (home == kMasterNode) return false;

  // Re-address to the true home with the original requester parked in the
  // high half of `c` (relay_mark); the low half — the tid of a page
  // request — rides along. The master becomes the wire-level sender, so
  // per-channel FIFO accounting stays sane; `seq`/`ack` are reassigned by
  // the reliable channel on send.
  net::Message relay = msg;
  relay.src = kMasterNode;
  relay.dst = home;
  relay.seq = 0;
  relay.ack = 0;
  relay.c = net::relay_mark(msg.src) | (msg.c & 0xFFFFFFFFull);
  stats_.add("dsm.home_relays");
  network_.send(std::move(relay));
  return true;
}

Status Cluster::load(const isa::Program& program) {
  if (loaded_) return Status::failed_precondition("program already loaded");

  const std::uint32_t page = config_.machine.page_size;
  const dsm::HomeLayout& layout = home_map_.layout();
  const GuestAddr pool_start =
      static_cast<GuestAddr>(layout.shadow_first_page) * page;
  const GuestAddr main_stack_top = pool_start;  // stack grows down from here
  const GuestAddr mmap_end = main_stack_top - kMainStackBytes;
  const GuestAddr mmap_start = config_.guest_mem_bytes / 2;

  if (program.brk_start >= mmap_start) {
    return Status::invalid_argument(
        "program image overlaps the mmap region; increase guest_mem_bytes");
  }
  for (const isa::Section& section : program.sections) {
    if (static_cast<std::uint64_t>(section.addr) + section.bytes.size() >
        mmap_start) {
      return Status::invalid_argument("program section outside image region");
    }
  }

  nodes_[kMasterNode]->space().load_program(program);
  syscalls_->configure_memory(program.brk_start, mmap_start, mmap_end);

  dbt::CpuContext main_ctx;
  main_ctx.tid = next_tid_++;
  main_ctx.pc = program.entry;
  main_ctx.gpr[isa::kSp] = main_stack_top - 16;
  main_ctx.gpr[isa::kTp] = main_ctx.tid;
  thread_node_[main_ctx.tid] = kMasterNode;
  alive_threads_ = 1;
  nodes_[kMasterNode]->add_thread(main_ctx, /*ctid=*/0, /*hint_group=*/-1);

  // Offered load starts at the same virtual instant the guest boots.
  if (serving_.has_value()) serving_->start();

  loaded_ = true;
  return Status::ok();
}

NodeId Cluster::pick_node(std::int32_t hint_group) {
  if (config_.single_node_baseline || config_.slave_nodes == 0) {
    return kMasterNode;
  }
  if (config_.sched.policy == SchedPolicy::kHintLocality && hint_group >= 0) {
    return static_cast<NodeId>(
        1 + static_cast<std::uint32_t>(hint_group) % config_.slave_nodes);
  }
  if (!config_.node_machines.empty()) {
    // Heterogeneous cluster: smooth weighted round-robin over the slaves,
    // weight = compute capacity, so a big node hosts proportionally more
    // guest threads while placement stays interleaved.
    if (rr_credits_.empty()) rr_credits_.assign(config_.slave_nodes, 0);
    std::int64_t total = 0;
    NodeId best = 1;
    for (NodeId n = 0; n < config_.slave_nodes; ++n) {
      const MachineConfig& m = config_.machine_for(static_cast<NodeId>(n + 1));
      // Capacity = cores x clock (x10 to keep integer math honest).
      const auto weight =
          static_cast<std::int64_t>(m.cores_per_node * m.cpu_ghz * 10.0);
      rr_credits_[n] += weight;
      total += weight;
      if (rr_credits_[n] > rr_credits_[best - 1]) {
        best = static_cast<NodeId>(n + 1);
      }
    }
    rr_credits_[best - 1] -= total;
    return best;
  }
  const NodeId target = rr_next_;
  rr_next_ = static_cast<NodeId>(rr_next_ % config_.slave_nodes + 1);
  return target;
}

std::int32_t Cluster::on_clone(const sys::SyscallRequest& req) {
  if (req.payload.size() < dbt::CpuContext::kWireBytes) {
    return -isa::kEINVAL;
  }
  dbt::CpuContext child = dbt::CpuContext::deserialize(req.payload);
  child.tid = next_tid_++;
  child.gpr[isa::kSp] = req.args[1];
  child.gpr[isa::kTp] = child.tid;
  child.set_a0(0);  // the child observes clone() returning 0
  const auto hint = static_cast<std::int32_t>(req.args[3]);
  child.hint_group = hint;

  const NodeId target = pick_node(hint);
  thread_node_[child.tid] = target;
  ++alive_threads_;
  stats_.add("core.clones");

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = target;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kCreateThread);
  msg.a = child.tid;
  msg.b = req.args[2];  // ctid
  msg.c = static_cast<std::uint64_t>(static_cast<std::uint32_t>(hint));
  msg.data.resize(dbt::CpuContext::kWireBytes);
  child.serialize(msg.data);
  network_.send(std::move(msg));
  return static_cast<std::int32_t>(child.tid);
}

void Cluster::on_thread_exit(const sys::SyscallRequest& req) {
  (void)req;
  assert(alive_threads_ > 0);
  if (--alive_threads_ == 0 && !exit_code_.has_value()) {
    exit_code_ = 0;
  }
}

NodeId Cluster::thread_node(GuestTid tid) const {
  auto it = thread_node_.find(tid);
  return it == thread_node_.end() ? kInvalidNode : it->second;
}

Status Cluster::migrate_thread(GuestTid tid, NodeId target) {
  if (target >= nodes_.size()) {
    return Status::invalid_argument("migration target out of range");
  }
  const NodeId current = thread_node(tid);
  if (current == kInvalidNode) {
    return Status::not_found("unknown thread id");
  }
  if (current == target) return Status::ok();

  net::Message msg;
  msg.src = kMasterNode;
  msg.dst = current;
  msg.type = static_cast<std::uint32_t>(CoreMsg::kMigrateReq);
  msg.a = tid;
  msg.b = target;
  network_.send(std::move(msg));
  return Status::ok();
}

void Cluster::snapshot_counters(TimePs at) {
  if (!trace::wants(tracer_, trace::Cat::kCounter)) return;
  trace::Record r;
  r.time = at;
  r.kind = trace::Kind::kCounter;
  r.cat = trace::Cat::kCounter;
  r.node = kMasterNode;
  r.track = trace::kTrackNode;
  for (const auto& [name, value] : stats_.counters()) {
    r.name = tracer_->intern(name);
    r.a = value;
    tracer_->record(r);
  }
  // Aggregate time breakdown as a timeline: Fig. 8's bars become curves.
  TimeBreakdown total;
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      total += thread.breakdown;
    }
  }
  const std::pair<const char*, DurationPs> parts[] = {
      {"time.execute", total.execute},
      {"time.translate", total.translate},
      {"time.pagefault", total.pagefault},
      {"time.syscall", total.syscall},
      {"time.idle", total.idle}};
  for (const auto& [name, value] : parts) {
    r.name = name;
    r.a = value;
    tracer_->record(r);
  }
}

bool Cluster::fatal_set() const {
  const std::lock_guard<std::mutex> lock(fatal_mutex_);
  return fatal_.has_value();
}

void Cluster::bind_execution_shard(std::size_t index) {
  if (tracer_ != nullptr) tracer_->bind_shard(index);
  stats_.bind_shard(index);
}

void Cluster::unbind_execution_shard() {
  if (tracer_ != nullptr) tracer_->unbind_shard();
  stats_.unbind_shard();
}

Result<Cluster::RunResult> Cluster::run(RunLimits limits) {
  if (!loaded_) return Status::failed_precondition("no program loaded");
  if (!queues_.empty()) return run_parallel(limits);

  const bool counters = trace::wants(tracer_, trace::Cat::kCounter);
  TimePs next_snapshot = counters ? tracer_->config().counter_interval : 0;
  while (!exit_code_.has_value() && !fatal_.has_value()) {
    if (!queue_.run_one()) break;
    if (counters && queue_.now() >= next_snapshot) {
      snapshot_counters(queue_.now());
      next_snapshot = queue_.now() + tracer_->config().counter_interval;
    }
    if (queue_.now() > limits.max_sim_time) {
      return Status::resource_exhausted("simulated time limit exceeded");
    }
    if (queue_.fired() > limits.max_events) {
      return Status::resource_exhausted("event limit exceeded");
    }
  }
  if (counters) snapshot_counters(queue_.now());  // final guest-completion sample
  return epilogue();
}

Result<Cluster::RunResult> Cluster::epilogue() {
  const std::lock_guard<std::mutex> lock(fatal_mutex_);
  if (fatal_.has_value()) {
    return Status::internal(*fatal_);
  }
  if (!exit_code_.has_value()) {
    std::string dump = "guest deadlock: " +
                       std::to_string(alive_threads_) +
                       " live threads but no pending events\n";
    for (const auto& node : nodes_) dump += node->blocked_dump();
    return Status::failed_precondition(dump);
  }

  RunResult result;
  result.exit_code = *exit_code_;
  result.sim_time = queue_.now();
  result.guest_insns = stats_.get("dbt.insns");
  for (const auto& node : nodes_) {
    for (const auto& [tid, thread] : node->threads()) {
      result.per_thread[tid] = thread.breakdown;
      result.total += thread.breakdown;
    }
  }
  result.guest_stdout = syscalls_->vfs().stdout_text();
  return result;
}

Result<Cluster::RunResult> Cluster::run_parallel(RunLimits limits) {
  // Conservative (CMB-style) synchronization, DESIGN.md §16. Every window:
  //
  //   1. Barrier (single-threaded): drain cross-queue mailboxes, find the
  //      global horizon H = earliest pending event anywhere.
  //   2. Run the master-plane queue over [H, H + L) inline — guest exit and
  //      serving decisions all happen there, and the exit time caps how far
  //      the slaves may still run.
  //   3. Run every slave queue over the same window on the thread pool.
  //
  // L is the network lookahead: no cross-node message sent inside a window
  // can be delivered inside that same window, so each queue can run its
  // slice without ever seeing an input it should have handled earlier.
  // Cross-queue sends land in the target's mailbox and become visible at
  // the next barrier, ordered by (time, sender, sender send-order) — host
  // thread count never changes what any window executes.
  const DurationPs lookahead = config_.net.lookahead();
  sim::ThreadPool pool(config_.sim.host_threads);
  const std::size_t n_queues = queues_.size();

  const bool counters = trace::wants(tracer_, trace::Cat::kCounter);
  TimePs next_snapshot = counters ? tracer_->config().counter_interval : 0;
  Status limit_hit = Status::ok();

  // The slave task and its argument buffers live across windows so the hot
  // loop allocates nothing: windows are microseconds of host work each.
  std::vector<std::size_t> active;
  active.reserve(n_queues);
  TimePs slave_end = 0;
  const std::function<void(std::size_t)> slave_task = [&](std::size_t i) {
    const std::size_t qi = active[i];
    bind_execution_shard(qi);
    (void)queues_[qi]->run_window(slave_end);
    unbind_execution_shard();
  };

  while (!exit_code_.has_value() && !fatal_set()) {
    for (sim::EventQueue* q : queues_) (void)q->drain_posted();

    std::optional<TimePs> horizon;
    for (sim::EventQueue* q : queues_) {
      const std::optional<TimePs> t = q->next_time();
      if (t.has_value() && (!horizon.has_value() || *t < *horizon)) {
        horizon = t;
      }
    }
    if (!horizon.has_value()) break;  // fully drained: exit or deadlock
    if (*horizon > limits.max_sim_time) {
      limit_hit = Status::resource_exhausted("simulated time limit exceeded");
      break;
    }

    if (counters && *horizon >= next_snapshot) {
      stats_.merge_shards();
      snapshot_counters(*horizon);
      next_snapshot = *horizon + tracer_->config().counter_interval;
    }

    const TimePs window_end = *horizon + lookahead;

    bind_execution_shard(0);
    (void)queue_.run_window(window_end, [this] {
      return exit_code_.has_value() || fatal_set();
    });
    unbind_execution_shard();

    // On guest exit at T_e the serial kernel stops dead; slaves here still
    // owe their events up to T_e (which the serial kernel fired before the
    // exit event), and nothing after it.
    slave_end = window_end;
    if (exit_code_.has_value() || fatal_set()) {
      slave_end = std::min(window_end, queue_.now() + 1);
    }

    // Dispatch only the queues with events inside the window: a node idle
    // this window (blocked on a remote page, parked worker pool) costs no
    // pool traffic, and a master-only window skips the barrier entirely.
    active.clear();
    for (std::size_t qi = 1; qi < n_queues; ++qi) {
      const std::optional<TimePs> t = queues_[qi]->next_time();
      if (t.has_value() && *t < slave_end) active.push_back(qi);
    }
    pool.run_tasks(active.size(), slave_task);

    std::uint64_t fired = 0;
    for (sim::EventQueue* q : queues_) fired += q->fired();
    if (fired > limits.max_events) {
      limit_hit = Status::resource_exhausted("event limit exceeded");
      break;
    }
  }

  // Fold the per-queue stats shards back into the main registry before
  // anything reads it (counter snapshot, RunResult, the embedding).
  stats_.merge_shards();
  if (!limit_hit.is_ok()) return limit_hit;
  if (counters) snapshot_counters(queue_.now());
  return epilogue();
}

}  // namespace dqemu::core
