// Cooperative cluster checkpoint / restore (DESIGN.md §18).
//
// A checkpoint is a virtual-time-stamped fingerprint of the whole cluster:
// one FNV-1a digest per component (each node's address space and thread
// contexts, every directory shard, every futex/lease table, the serving
// plane's queues), captured at a clean cut — the simulation has finished
// every event strictly before T and started none at-or-after it, so both
// scheduler kernels capture the identical state.
//
// Restore leans on the simulator's determinism invariant instead of
// shipping state: a run is a pure function of its config, so re-executing
// the same config up to the checkpoint's virtual time reconstructs the
// state bit-for-bit — and the digest comparison at T *proves* it before
// the run continues. Replay is the same mechanism with the flight recorder
// (trace) armed. This turns the determinism claim from an asserted
// property into a checked one on every restore.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace dqemu::core {

/// 64-bit FNV-1a, the repo's standard content fingerprint.
[[nodiscard]] constexpr std::uint64_t fnv1a_seed() {
  return 0xCBF29CE484222325ULL;
}
[[nodiscard]] constexpr std::uint64_t fnv1a_step(std::uint64_t h,
                                                 std::uint8_t byte) {
  return (h ^ byte) * 0x00000100000001B3ULL;
}
[[nodiscard]] std::uint64_t fnv1a(std::span<const std::uint8_t> bytes,
                                  std::uint64_t h = fnv1a_seed());
[[nodiscard]] std::uint64_t fnv1a_u32(std::uint32_t v, std::uint64_t h);
[[nodiscard]] std::uint64_t fnv1a_u64(std::uint64_t v, std::uint64_t h);

struct CheckpointImage {
  static constexpr std::uint32_t kVersion = 1;

  TimePs virtual_time = 0;
  /// (component name, digest), sorted by name. Component names are stable
  /// across versions: "space.N", "threads.N", "dir.N", "futex.N",
  /// "serve", "insns".
  std::vector<std::pair<std::string, std::uint64_t>> digests;

  void add(std::string name, std::uint64_t digest);
  /// Canonical order (by component name); call before save / compare.
  void normalize();

  /// Component names whose digests differ (either direction; a component
  /// present on only one side counts as differing).
  [[nodiscard]] std::vector<std::string> diff(
      const CheckpointImage& other) const;

  /// Text format: `dqemu-checkpoint v1` / `time <ps>` / `digest <name>
  /// <hex>`... Returns false on I/O failure.
  [[nodiscard]] bool save(const std::string& path) const;
  /// Returns false on I/O failure or a malformed / wrong-version file.
  [[nodiscard]] bool load(const std::string& path);
};

}  // namespace dqemu::core
