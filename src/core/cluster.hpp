// DQEMU public API: a cluster of DQEMU instances (paper figure 2).
//
// Typical embedding:
//
//     dqemu::ClusterConfig config;
//     config.slave_nodes = 4;
//     config.dsm.enable_forwarding = true;
//     dqemu::core::Cluster cluster(config);
//     auto status = cluster.load(program);       // master loads the image
//     auto result = cluster.run();               // event loop to completion
//     // result.value().sim_time is the virtual wall-clock of the guest run
//
// The master node (node 0) hosts the main thread, the coherence directory
// and the delegated-syscall engine; guest threads created by clone() are
// placed on slave nodes by the configured scheduling policy.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/checkpoint.hpp"
#include "core/node.hpp"
#include "dsm/directory.hpp"
#include "dsm/placement.hpp"
#include "isa/program.hpp"
#include "net/network.hpp"
#include "serve/load_generator.hpp"
#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "sys/master_syscalls.hpp"
#include "trace/tracer.hpp"

namespace dqemu::core {

class Cluster {
 public:
  /// Guardrails for run(): a guest bug (deadlock/livelock) fails the run
  /// instead of hanging the host process.
  struct RunLimits {
    TimePs max_sim_time = 7200 * time_literals::kSec;
    std::uint64_t max_events = 2'000'000'000ULL;
  };

  struct RunResult {
    std::uint32_t exit_code = 0;
    /// Virtual time from boot to guest completion — the quantity every
    /// benchmark in the paper reports ratios of.
    TimePs sim_time = 0;
    std::uint64_t guest_insns = 0;
    /// Per guest thread time breakdown (Fig. 8's execute/pagefault/syscall).
    std::map<GuestTid, TimeBreakdown> per_thread;
    TimeBreakdown total;
    std::string guest_stdout;
  };

  /// `tracer`, when non-null, must outlive the cluster; it is threaded
  /// through every layer (event queue, network, DSM, syscalls, nodes) and
  /// the run loop takes periodic counter snapshots into it.
  explicit Cluster(ClusterConfig config, trace::Tracer* tracer = nullptr);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Loads a program image on the master and creates the main thread.
  [[nodiscard]] Status load(const isa::Program& program);

  /// Runs the event loop until the guest exits (exit_group or last thread
  /// exit), a guest error occurs, or a limit trips.
  [[nodiscard]] Result<RunResult> run(RunLimits limits);
  [[nodiscard]] Result<RunResult> run() { return run(RunLimits{}); }

  // ---- introspection ------------------------------------------------------
  [[nodiscard]] StatsRegistry& stats() { return stats_; }
  [[nodiscard]] sim::EventQueue& queue() { return queue_; }
  [[nodiscard]] sys::Vfs& vfs() { return syscalls_->vfs(); }
  [[nodiscard]] std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }
  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  /// Null in single-node baseline mode (no DSM).
  [[nodiscard]] dsm::Directory* directory() {
    return directory_.has_value() ? &*directory_ : nullptr;
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  /// Placement authority (DESIGN.md §17). sharded() is false — and every
  /// home is the master — unless home sharding is compiled in and enabled.
  [[nodiscard]] const dsm::HomeMap& homes() const { return home_map_; }
  /// Directory shard hosted on slave `id`; null when sharding is off or
  /// `id` is not a home. The master's (boot) directory stays directory().
  [[nodiscard]] dsm::Directory* home_shard(NodeId id) {
    return id < home_shards_.size() ? home_shards_[id].get() : nullptr;
  }
  /// Serving-plane load generator; null unless ServeConfig::enabled (and
  /// the subsystem is compiled in — see DQEMU_ENABLE_SERVING).
  [[nodiscard]] serve::LoadGenerator* serving() {
    return serving_.has_value() ? &*serving_ : nullptr;
  }
  /// Node currently hosting `tid` (master bookkeeping), or kInvalidNode.
  [[nodiscard]] NodeId thread_node(GuestTid tid) const;
  [[nodiscard]] GuestTid main_tid() const { return 1; }

  /// Requests migration of a live guest thread to `target` (section 4.1's
  /// remote thread migration); takes effect at the thread's next dispatch.
  [[nodiscard]] Status migrate_thread(GuestTid tid, NodeId target);

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------

  /// Arms a cooperative checkpoint: when the simulation reaches the clean
  /// cut at virtual time `at` (every event strictly before it fired, none
  /// at-or-after started), the cluster state is fingerprinted into
  /// checkpoint_image(). Call before run(); one checkpoint per run.
  void arm_checkpoint(TimePs at) { checkpoint_at_ = at; }
  /// The captured image; empty until the armed cut is reached (and forever
  /// if the guest exits first — the CLI reports that as an error).
  [[nodiscard]] const std::optional<CheckpointImage>& checkpoint_image()
      const {
    return checkpoint_;
  }
  /// Digest fingerprint of the current (quiescent) cluster state. Public
  /// for tests; run() calls it at the armed cut.
  [[nodiscard]] CheckpointImage capture_checkpoint();
  /// Nodes that crashed during the run, in death order.
  [[nodiscard]] const std::vector<NodeId>& dead_nodes() const {
    return dead_nodes_;
  }

 private:
  [[nodiscard]] NodeId pick_node(std::int32_t hint_group);
  void master_handler(const net::Message& msg);
  /// First-touch relay (DESIGN.md §17): a request for a page/futex homed on
  /// a slave that arrived at the master (the sender's placement view had
  /// not learned the home yet) is re-addressed to the true home, tagged
  /// with the original requester via relay_mark. Returns true when the
  /// message was relayed (and must not be handled here).
  [[nodiscard]] bool relay_if_misdirected(const net::Message& msg);
  std::int32_t on_clone(const sys::SyscallRequest& req);
  void on_thread_exit(const sys::SyscallRequest& req);
  /// Samples every stats counter plus the aggregate time breakdown into the
  /// tracer (kCounter records) — the timeline form of the Fig. 8 data.
  /// `at` is the virtual timestamp stamped on the sample: the event time in
  /// the serial loop, the window horizon at a parallel barrier.
  void snapshot_counters(TimePs at);
  /// Conservative-window scheduler (DESIGN.md §16): one event queue per
  /// node on a host thread pool. Taken by run() when host_threads > 1.
  [[nodiscard]] Result<RunResult> run_parallel(RunLimits limits);
  /// Shared end-of-run path: fatal error, guest-deadlock diagnosis, or the
  /// assembled RunResult. Runs single-threaded after the event loop stops.
  [[nodiscard]] Result<RunResult> epilogue();
  /// Routes this thread's trace records, flow ids and stats increments to
  /// queue `index`'s private shard while a window executes.
  void bind_execution_shard(std::size_t index);
  void unbind_execution_shard();
  /// fatal_ can be set from any worker (node fatal hooks run inside slave
  /// windows), so all access goes through the mutex.
  [[nodiscard]] bool fatal_set() const;

  // ---- whole-node fault plane (DESIGN.md §18) ---------------------------
  /// Resolves each node-fault rule's drawn fields (node = 0, at = 0) from
  /// the fault seed (counter-based, per-rule streams) and schedules the
  /// kCrashCmd for every rule on the master-plane queue.
  void schedule_node_faults();
  /// kCrashReport: the terminal step of a node's last gasp. Marks the node
  /// dead, repoints its homes at the master, sweeps master-plane state,
  /// broadcasts kNodeDead, re-homes the captured threads, and patches the
  /// serving plane's bookkeeping.
  void on_crash_report(const net::Message& msg);
  /// Lowest-id surviving slave (the master if none remain): where a dead
  /// node's threads land and where dead-slave placements are redirected.
  [[nodiscard]] NodeId replacement_node() const;
  [[nodiscard]] bool is_dead(NodeId id) const;
  /// Captures the armed checkpoint if the clean cut has been reached
  /// (`horizon` = earliest unfired event anywhere; nullopt = drained).
  void capture_if_due(std::optional<TimePs> horizon);

  ClusterConfig config_;
  trace::Tracer* tracer_ = nullptr;
  StatsRegistry stats_;
  sim::EventQueue queue_;
  /// Parallel mode only: one private event queue per slave node (the
  /// master plane — node 0, directory, syscalls, serving — keeps queue_).
  /// Declared before network_: the reliable channel's per-link timers
  /// cancel into these queues on destruction, so they must outlive it.
  std::vector<std::unique_ptr<sim::EventQueue>> slave_queues_;
  /// Parallel mode only: queues_[i] is node i's queue (queues_[0] ==
  /// &queue_). Empty in the serial kernel — this doubles as the mode flag.
  std::vector<sim::EventQueue*> queues_;
  net::Network network_;
  /// Placement authority; lives on the master plane (first-touch assignment
  /// happens in master_handler, so it needs no locking).
  dsm::HomeMap home_map_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::optional<dsm::Directory> directory_;
  std::optional<sys::MasterSyscalls> syscalls_;
  std::optional<serve::LoadGenerator> serving_;
  /// Sharding only, indexed by home node id (slot 0 unused): the directory
  /// shard and futex service each slave hosts. Run on that node's event
  /// queue and backed by that node's address space.
  std::vector<std::unique_ptr<dsm::Directory>> home_shards_;
  std::vector<std::unique_ptr<sys::FutexService>> futex_homes_;

  // Master-side global thread table.
  GuestTid next_tid_ = 1;
  std::map<GuestTid, NodeId> thread_node_;
  std::uint32_t alive_threads_ = 0;
  NodeId rr_next_ = 1;
  /// Smooth weighted round-robin state for heterogeneous clusters
  /// (weight = cores per slave node); empty when the cluster is uniform.
  std::vector<std::int64_t> rr_credits_;

  /// Crashed nodes in death order (master-plane state; mutated only in
  /// master_handler context).
  std::vector<NodeId> dead_nodes_;
  /// Armed checkpoint cut and the image captured there.
  std::optional<TimePs> checkpoint_at_;
  std::optional<CheckpointImage> checkpoint_;

  bool loaded_ = false;
  std::optional<std::uint32_t> exit_code_;
  mutable std::mutex fatal_mutex_;
  std::optional<std::string> fatal_;
};

}  // namespace dqemu::core
