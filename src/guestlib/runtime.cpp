#include "guestlib/runtime.hpp"

#include "isa/syscall_abi.hpp"

namespace dqemu::guestlib {

using isa::Assembler;
using isa::Sys;
using enum isa::Reg;

void emit_crt0(Assembler& a, Assembler::Label main_label) {
  Assembler::Label entry = a.here("_start");
  a.set_entry(entry);
  a.call(main_label);
  a.syscall(static_cast<std::int32_t>(Sys::kExitGroup));  // a0 = main's result
}

Runtime emit_runtime(Assembler& a, const RuntimeOptions& options) {
  Runtime rt;
  rt.mutex_lock = a.make_label("rt_mutex_lock");
  rt.mutex_unlock = a.make_label("rt_mutex_unlock");
  rt.barrier_wait = a.make_label("rt_barrier_wait");
  rt.thread_create = a.make_label("rt_thread_create");
  rt.thread_join = a.make_label("rt_thread_join");
  rt.malloc_fn = a.make_label("rt_malloc");
  rt.print = a.make_label("rt_print");
  rt.print_u32 = a.make_label("rt_print_u32");

  const auto sys = [](Sys s) { return static_cast<std::int32_t>(s); };

  // Heap lock (one word, zero = free).
  Assembler::Label heap_lock = a.make_label("rt_heap_lock");
  a.d_align(4);
  a.bind_data(heap_lock);
  a.d_word(0);

  // ---- mutex_lock(a0 = addr) ---------------------------------------------
  // Three-state futex mutex: 0 free, 1 locked, 2 locked-with-waiters.
  // Spin with LL/SC first; on persistent contention mark the lock
  // contended and futex_wait on value 2 (glibc's scheme, section 4.4's
  // two-level locking: intra-node contention resolves in the spin phase,
  // cross-node contention falls back to the delegated futex).
  {
    a.bind(rt.mutex_lock);
    Assembler::Label spin = a.make_label();
    Assembler::Label backoff = a.make_label();
    Assembler::Label contended = a.make_label();
    Assembler::Label mark = a.make_label();
    a.mov(kT0, kA0);
    a.li(kT2, options.mutex_spin);
    a.bind(spin);  // fast path: acquire with 1 (uncontended)
    a.ll(kT1, kT0);
    a.bne(kT1, kZero, backoff);
    a.li(kT3, 1);
    a.sc(kT4, kT0, kT3);
    a.bne(kT4, kZero, spin);
    a.ret();  // acquired
    a.bind(backoff);
    a.addi(kT2, kT2, -1);
    a.bne(kT2, kZero, spin);
    // Slow path (glibc scheme). Once a thread has waited, it must acquire
    // with value 2: other threads may still be parked, and only value 2
    // makes the eventual unlock issue a wake. Acquiring with 1 here loses
    // wakeups (thread A wakes, takes the lock "uncontended", unlocks
    // without waking B who is still parked).
    a.bind(contended);
    a.ll(kT1, kT0);
    a.bne(kT1, kZero, mark);
    a.li(kT3, 2);
    a.sc(kT4, kT0, kT3);
    a.bne(kT4, kZero, contended);
    a.ret();  // acquired in contended state
    a.bind(mark);
    a.li(kT3, 2);
    a.sc(kT4, kT0, kT3);  // 1 -> 2; failure is fine (someone changed it)
    a.mov(kA0, kT0);
    a.li(kA1, static_cast<std::int32_t>(isa::kFutexWait));
    a.li(kA2, 2);
    a.syscall(sys(Sys::kFutex));
    a.j(contended);  // woken or EAGAIN: retry the slow path
  }

  // ---- mutex_unlock(a0 = addr) -----------------------------------------
  {
    a.bind(rt.mutex_unlock);
    Assembler::Label retry = a.make_label();
    Assembler::Label no_waiters = a.make_label();
    a.mov(kT0, kA0);
    a.bind(retry);
    a.ll(kT1, kT0);       // old value (1 or 2)
    a.sc(kT4, kT0, kZero);
    a.bne(kT4, kZero, retry);
    a.li(kT3, 2);
    a.bne(kT1, kT3, no_waiters);
    a.mov(kA0, kT0);
    a.li(kA1, static_cast<std::int32_t>(isa::kFutexWake));
    a.li(kA2, 1);
    a.syscall(sys(Sys::kFutex));
    a.bind(no_waiters);
    a.ret();
  }

  // ---- barrier_wait(a0 = addr of {arrived, generation, total}) ----------
  {
    a.bind(rt.barrier_wait);
    Assembler::Label inc = a.make_label();
    Assembler::Label wait_loop = a.make_label();
    Assembler::Label done = a.make_label();
    a.mov(kT0, kA0);
    a.lw(kT3, kT0, 4);  // my generation
    a.bind(inc);
    a.ll(kT1, kT0);
    a.addi(kT1, kT1, 1);
    a.sc(kT4, kT0, kT1);
    a.bne(kT4, kZero, inc);
    a.lw(kT2, kT0, 8);  // total
    a.bne(kT1, kT2, wait_loop);
    // Last arriver: reset, advance the generation, wake everyone.
    a.sw(kT0, kZero, 0);
    a.addi(kT3, kT3, 1);
    a.sw(kT0, kT3, 4);
    a.addi(kA0, kT0, 4);
    a.li(kA1, static_cast<std::int32_t>(isa::kFutexWake));
    a.li(kA2, 0x7FFF);
    a.syscall(sys(Sys::kFutex));
    a.ret();
    a.bind(wait_loop);
    a.lw(kT1, kT0, 4);
    a.bne(kT1, kT3, done);  // generation advanced: released
    a.addi(kA0, kT0, 4);
    a.li(kA1, static_cast<std::int32_t>(isa::kFutexWait));
    a.mov(kA2, kT3);  // expected: still my generation
    a.syscall(sys(Sys::kFutex));
    a.j(wait_loop);
    a.bind(done);
    a.ret();
  }

  // ---- malloc(a0 = size) --------------------------------------------------
  {
    a.bind(rt.malloc_fn);
    a.addi(kSp, kSp, -16);
    a.sw(kSp, kRa, 0);
    a.sw(kSp, kA0, 4);
    a.la(kA0, heap_lock);
    a.call(rt.mutex_lock);
    a.li(kA0, 0);
    a.syscall(sys(Sys::kBrk));  // query current break
    a.addi(kA0, kA0, 7);
    a.andi(kA0, kA0, -8);       // 8-byte align
    a.sw(kSp, kA0, 8);          // result
    a.lw(kT1, kSp, 4);
    a.add(kA0, kA0, kT1);
    a.syscall(sys(Sys::kBrk));  // extend
    a.la(kA0, heap_lock);
    a.call(rt.mutex_unlock);
    a.lw(kA0, kSp, 8);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 16);
    a.ret();
  }

  // ---- thread_create(a0 = fn, a1 = arg) -> handle -------------------------
  {
    a.bind(rt.thread_create);
    Assembler::Label child = a.make_label();
    a.addi(kSp, kSp, -32);
    a.sw(kSp, kRa, 0);
    a.sw(kSp, kA0, 4);  // fn
    a.sw(kSp, kA1, 8);  // arg
    // Join handle (ctid word): one heap word set to 1 while alive.
    a.li(kA0, 16);
    a.call(rt.malloc_fn);
    a.sw(kSp, kA0, 12);  // handle
    a.li(kT1, 1);
    a.sw(kA0, kT1, 0);
    // Child stack.
    a.li(kA0, static_cast<std::int64_t>(options.thread_stack_bytes));
    a.syscall(sys(Sys::kMmap));
    a.li(kT1, static_cast<std::int64_t>(options.thread_stack_bytes - 32));
    a.add(kT2, kA0, kT1);  // child sp
    a.lw(kT3, kSp, 4);
    a.sw(kT2, kT3, 0);     // [child_sp+0] = fn
    a.lw(kT3, kSp, 8);
    a.sw(kT2, kT3, 4);     // [child_sp+4] = arg
    // clone(flags=0, child_sp, ctid=handle)
    a.li(kA0, 0);
    a.mov(kA1, kT2);
    a.lw(kA2, kSp, 12);
    a.syscall(sys(Sys::kClone));
    a.beq(kA0, kZero, child);
    // Parent: return the handle.
    a.lw(kA0, kSp, 12);
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 32);
    a.ret();
    // Child: sp points at {fn, arg}; run fn(arg), then exit(ret).
    a.bind(child);
    a.lw(kT1, kSp, 0);
    a.lw(kA0, kSp, 4);
    a.addi(kSp, kSp, -16);
    a.jalr(kRa, kT1, 0);
    a.syscall(sys(Sys::kExit));  // a0 = fn's return value
  }

  // ---- thread_join(a0 = handle) -----------------------------------------
  // CLONE_CHILD_CLEARTID semantics: the kernel (node layer) stores 0 to
  // the handle and futex-wakes it when the thread exits.
  {
    a.bind(rt.thread_join);
    Assembler::Label loop = a.make_label();
    Assembler::Label done = a.make_label();
    a.mov(kT0, kA0);
    a.bind(loop);
    a.lw(kT1, kT0, 0);
    a.beq(kT1, kZero, done);
    a.mov(kA0, kT0);
    a.li(kA1, static_cast<std::int32_t>(isa::kFutexWait));
    a.mov(kA2, kT1);
    a.syscall(sys(Sys::kFutex));
    a.j(loop);
    a.bind(done);
    a.ret();
  }

  // ---- print(a0 = addr, a1 = len) ----------------------------------------
  {
    a.bind(rt.print);
    a.mov(kA2, kA1);
    a.mov(kA1, kA0);
    a.li(kA0, static_cast<std::int32_t>(isa::kStdoutFd));
    a.syscall(sys(Sys::kWrite));
    a.ret();
  }

  // ---- print_u32(a0 = value) ----------------------------------------------
  {
    a.bind(rt.print_u32);
    Assembler::Label digits = a.make_label();
    a.addi(kSp, kSp, -32);
    a.sw(kSp, kRa, 0);
    // Build the decimal string backwards; newline at [sp+27].
    a.li(kT4, '\n');
    a.sb(kSp, kT4, 27);
    a.addi(kT0, kSp, 27);  // write cursor (pre-decrement)
    a.li(kT3, 10);
    a.mov(kT1, kA0);
    a.bind(digits);
    a.remu(kT2, kT1, kT3);
    a.addi(kT2, kT2, '0');
    a.addi(kT0, kT0, -1);
    a.sb(kT0, kT2, 0);
    a.divu(kT1, kT1, kT3);
    a.bne(kT1, kZero, digits);
    // write(1, cursor, sp+28 - cursor)
    a.addi(kT2, kSp, 28);
    a.sub(kA2, kT2, kT0);
    a.mov(kA1, kT0);
    a.li(kA0, static_cast<std::int32_t>(isa::kStdoutFd));
    a.syscall(sys(Sys::kWrite));
    a.lw(kRa, kSp, 0);
    a.addi(kSp, kSp, 32);
    a.ret();
  }

  return rt;
}

}  // namespace dqemu::guestlib
