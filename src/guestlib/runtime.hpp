// Guest runtime library ("guest libc") emitted as GA32 code.
//
// The paper's benchmarks are ARM binaries with a statically linked libc
// and pthreads. This module plays that role: it emits, into a workload's
// Assembler, the runtime routines every guest program uses —
//
//   * futex-based mutex (spin-then-wait, contended-state tracking so the
//     uncontended path never enters the kernel — matching glibc and the
//     behaviour Fig. 6's best case depends on)
//   * sense-counting barrier (futex on a generation word)
//   * thread create/join (clone + CLONE_CHILD_CLEARTID-style join)
//   * brk-backed malloc under a global heap lock
//   * write()-based printing helpers
//
// All routines follow the GA32 ABI: args/result in a0..a3, ra as the link
// register; they clobber t0..t4 and a0..a3 unless noted.
#pragma once

#include <cstdint>

#include "isa/assembler.hpp"

namespace dqemu::guestlib {

/// Default stack size for created guest threads.
inline constexpr std::uint32_t kThreadStackBytes = 256 * 1024;

/// Labels of the emitted runtime entry points.
struct Runtime {
  /// void mutex_lock(a0 = mutex addr). The mutex is one zeroed word.
  isa::Assembler::Label mutex_lock;
  /// void mutex_unlock(a0 = mutex addr).
  isa::Assembler::Label mutex_unlock;
  /// void barrier_wait(a0 = barrier addr). Barrier layout: three words
  /// {arrived, generation, total}; `total` must be initialized.
  isa::Assembler::Label barrier_wait;
  /// u32 handle thread_create(a0 = fn, a1 = arg). Returns a join handle.
  /// The new thread runs fn(arg) and exits with its return value.
  isa::Assembler::Label thread_create;
  /// void thread_join(a0 = handle from thread_create).
  isa::Assembler::Label thread_join;
  /// void* malloc(a0 = size). 8-byte aligned; never freed (arena-style).
  isa::Assembler::Label malloc_fn;
  /// void print(a0 = string addr, a1 = length): write(1, ...).
  isa::Assembler::Label print;
  /// void print_u32(a0 = value): prints decimal + newline to stdout.
  isa::Assembler::Label print_u32;
};

struct RuntimeOptions {
  /// LL/SC acquisition attempts before falling back to futex_wait.
  std::int32_t mutex_spin = 64;
  std::uint32_t thread_stack_bytes = kThreadStackBytes;
};

/// Emits the runtime's code and data into `a` (at the current position)
/// and returns the entry labels. Call once per program.
Runtime emit_runtime(isa::Assembler& a, const RuntimeOptions& options = {});

/// Emits the standard entry stub: call `main_label`, then
/// exit_group(main's return value). Binds `entry` as the program entry.
void emit_crt0(isa::Assembler& a, isa::Assembler::Label main_label);

}  // namespace dqemu::guestlib
