// DBT execution engine.
//
// Runs a guest thread's translated blocks until its scheduling quantum is
// exhausted or it hits an event the node must handle: a page-protection
// fault (handed to the DSM layer), a SYSCALL (handed to the delegation
// layer), or a guest error. Every load/store goes through the shadow-map
// translation and the page-protection check — the interception point that
// real DQEMU gets from mprotect + SIGSEGV.
#pragma once

#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "dbt/cpu_context.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"

namespace dqemu::dbt {

enum class StopReason {
  kQuantum,    ///< ran out of instruction budget (at a block boundary)
  kPageFault,  ///< fault_addr/fault_is_write/fault_is_ifetch describe it
  kSyscall,    ///< syscall_num is set; pc already advanced past SYSCALL
  kGuestError, ///< error holds a diagnostic; the guest is wedged
};

struct ExecResult {
  StopReason reason = StopReason::kQuantum;
  std::uint64_t insns = 0;            ///< guest instructions retired
  std::uint64_t exec_cycles = 0;      ///< execution cost (host cycles)
  std::uint64_t translate_cycles = 0; ///< one-time translation cost incurred
  GuestAddr fault_addr = 0;
  bool fault_is_write = false;
  bool fault_is_ifetch = false;
  std::int32_t syscall_num = 0;
  std::string error;
};

class ExecEngine {
 public:
  /// All references must outlive the engine. `shadow` may be null (no page
  /// splitting). `check_protection` is false only in the single-node
  /// baseline, where every page is resident and writable.
  ExecEngine(mem::AddressSpace& space, const mem::ShadowMap* shadow,
             LlscTable& llsc, TranslationCache& cache, const DbtConfig& config,
             bool check_protection, StatsRegistry* stats = nullptr);

  /// Executes `ctx` for at most ~max_insns guest instructions (quantum is
  /// checked at block boundaries, so it can overshoot by one block).
  ExecResult run(CpuContext& ctx, std::uint64_t max_insns);

 private:
  mem::AddressSpace& space_;
  const mem::ShadowMap* shadow_;
  LlscTable& llsc_;
  TranslationCache& cache_;
  DbtConfig config_;
  bool check_protection_;
  StatsRegistry* stats_;
};

}  // namespace dqemu::dbt
