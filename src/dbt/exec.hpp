// DBT execution engine.
//
// Runs a guest thread's translated blocks until its scheduling quantum is
// exhausted or it hits an event the node must handle: a page-protection
// fault (handed to the DSM layer), a SYSCALL (handed to the delegation
// layer), or a guest error. Every load/store goes through the shadow-map
// translation and the page-protection check — the interception point that
// real DQEMU gets from mprotect + SIGSEGV.
//
// Hot path (DESIGN.md section 10): a direct-mapped software TLB caches the
// per-page outcome of shadow-resolve + bounds + protection, and a
// direct-mapped indirect-jump cache (QEMU's tb_jmp_cache) skips the
// translation-cache hash lookup on jalr and cold chain misses. Both are
// host-side only — virtual-time results are byte-identical with the fast
// paths compiled out (-DDQEMU_ENABLE_FASTPATH=OFF) or disabled at runtime
// (DbtConfig::enable_fastpath = false). Invalidation is generation-based:
// AddressSpace protection changes, ShadowMap splits and TranslationCache
// drops each bump a counter that run() compares on entry; nothing mutates
// those structures while run() is on the stack (sequential DES).
#pragma once

#include <array>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "dbt/cpu_context.hpp"
#include "dbt/llsc_table.hpp"
#include "dbt/translation.hpp"
#include "mem/address_space.hpp"
#include "mem/shadow_map.hpp"

/// Compile-time gate for the execution fast paths (CMake option
/// DQEMU_ENABLE_FASTPATH; see src/dbt/CMakeLists.txt).
#ifndef DQEMU_FASTPATH_ENABLED
#define DQEMU_FASTPATH_ENABLED 1
#endif

namespace dqemu::dbt {

enum class StopReason {
  kQuantum,    ///< ran out of instruction budget (at a block boundary)
  kPageFault,  ///< fault_addr/fault_is_write/fault_is_ifetch describe it
  kSyscall,    ///< syscall_num is set; pc already advanced past SYSCALL
  kGuestError, ///< error holds a diagnostic; the guest is wedged
};

struct ExecResult {
  StopReason reason = StopReason::kQuantum;
  std::uint64_t insns = 0;            ///< guest instructions retired
  std::uint64_t exec_cycles = 0;      ///< execution cost (host cycles)
  std::uint64_t translate_cycles = 0; ///< one-time translation cost incurred
  GuestAddr fault_addr = 0;
  bool fault_is_write = false;
  bool fault_is_ifetch = false;
  std::int32_t syscall_num = 0;
  std::string error;
};

class ExecEngine {
 public:
  /// All references must outlive the engine. `shadow` may be null (no page
  /// splitting). `check_protection` is false only in the single-node
  /// baseline, where every page is resident and writable.
  ExecEngine(mem::AddressSpace& space, const mem::ShadowMap* shadow,
             LlscTable& llsc, TranslationCache& cache, const DbtConfig& config,
             bool check_protection, StatsRegistry* stats = nullptr);

  /// Executes `ctx` for at most ~max_insns guest instructions (quantum is
  /// checked at block boundaries, so it can overshoot by one block).
  ExecResult run(CpuContext& ctx, std::uint64_t max_insns);

  /// Drops the software TLB and the indirect-jump cache unconditionally.
  /// Normally unnecessary — run() revalidates against the generation
  /// counters of AddressSpace / ShadowMap / TranslationCache — but
  /// embedders mutating those structures behind the generations (tests)
  /// can force a flush here. No-op when fast paths are compiled out.
  void invalidate_fast_caches();

 private:
  /// Hot counters accumulated in locals during a quantum and flushed to
  /// the stats registry once per run() call: a per-event string-keyed map
  /// lookup would dominate the dispatch loop it is measuring.
  struct HotCounters {
    std::uint64_t chain_hit = 0;
    std::uint64_t hints = 0;
    std::uint64_t tlb_hit = 0;
    std::uint64_t tlb_miss = 0;
    std::uint64_t jmp_cache_hit = 0;
    std::uint64_t llsc_fastpath = 0;
    std::uint64_t sb_exec = 0;       ///< superblock trace entries
    std::uint64_t sb_side_exit = 0;  ///< guarded exits off a live trace
    std::uint64_t fused_ops = 0;     ///< fused pairs executed
  };

  ExecResult run_loop(CpuContext& ctx, std::uint64_t max_insns,
                      HotCounters& hot);

  mem::AddressSpace& space_;
  const mem::ShadowMap* shadow_;
  LlscTable& llsc_;
  TranslationCache& cache_;
  DbtConfig config_;
  bool check_protection_;
  StatsRegistry* stats_;

#if DQEMU_FASTPATH_ENABLED
  /// Never a valid page-aligned tag or instruction address (low bits set).
  static constexpr GuestAddr kNoTag = ~GuestAddr{0};

  /// Software TLB entry: caches, for one unsplit guest page, the fact
  /// that accesses resolve to themselves (identity shadow mapping), are
  /// in bounds, and carry these permissions. Split pages are never
  /// cached — their shard-granular redirection takes the slow path.
  struct TlbEntry {
    GuestAddr tag = kNoTag;  ///< page-aligned guest address
    bool allow_read = false;
    bool allow_write = false;
  };
  /// Indirect-jump cache entry (QEMU's tb_jmp_cache): pc -> block.
  struct JmpCacheEntry {
    GuestAddr pc = kNoTag;
    TranslationBlock* tb = nullptr;
  };

  static constexpr std::uint32_t kTlbEntries = 256;
  static constexpr std::uint32_t kJmpCacheEntries = 1024;

  [[nodiscard]] TlbEntry& tlb_slot(GuestAddr addr) {
    return tlb_[(addr >> space_.page_shift()) & (kTlbEntries - 1)];
  }
  [[nodiscard]] JmpCacheEntry& jmp_slot(GuestAddr pc) {
    return jmp_cache_[(pc >> 2) & (kJmpCacheEntries - 1)];
  }

  /// Revalidates both caches against the generation counters; called on
  /// entry to run().
  void sync_fast_caches();

  std::array<TlbEntry, kTlbEntries> tlb_{};
  std::array<JmpCacheEntry, kJmpCacheEntries> jmp_cache_{};
  std::uint64_t seen_protection_gen_ = ~std::uint64_t{0};
  std::uint64_t seen_shadow_gen_ = ~std::uint64_t{0};
  std::uint64_t seen_tcache_gen_ = ~std::uint64_t{0};
#endif

#if DQEMU_SUPERBLOCKS_ENABLED
  /// Advances the superblock memory epoch when page protections or the
  /// shadow map changed; traces whose per-op TLB tags were filled under an
  /// older epoch reset them lazily on entry. Independent of the software
  /// TLB so superblocks stay correct with the fast paths compiled out.
  void sync_sb_epoch();

  std::uint64_t sb_mem_epoch_ = 1;  ///< 0 is "never valid" (fresh traces)
  std::uint64_t sb_seen_protection_gen_ = ~std::uint64_t{0};
  std::uint64_t sb_seen_shadow_gen_ = ~std::uint64_t{0};
#endif
};

}  // namespace dqemu::dbt
