// Reference GA32 interpreter for differential testing.
//
// A deliberately boring, independent re-implementation of the ISA
// semantics: one instruction at a time, no translation cache, no block
// chaining, no cost model, straight off the decoder. The property tests
// run random programs through this and through the production ExecEngine
// and require bit-identical final states — catching semantic drift in
// either implementation.
#pragma once

#include <cstdint>
#include <string>

#include "dbt/cpu_context.hpp"
#include "mem/address_space.hpp"

namespace dqemu::dbt {

struct ReferenceResult {
  enum class Stop { kSyscall, kError, kLimit } stop = Stop::kLimit;
  std::uint64_t insns = 0;
  std::int32_t syscall_num = 0;
  std::string error;
};

/// Interprets from ctx.pc until a SYSCALL, an error, or `max_insns`.
/// Memory protection is NOT checked (reference semantics only). LL/SC is
/// modeled with a single thread-local reservation (sufficient for
/// single-threaded differential runs).
ReferenceResult reference_run(CpuContext& ctx, mem::AddressSpace& space,
                              std::uint64_t max_insns);

}  // namespace dqemu::dbt
