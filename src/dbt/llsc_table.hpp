// Global LL/SC hash table (paper section 4.4).
//
// Guest LL/SC pairs are emulated on a CAS-style host without the ABA
// hazard by tracking open LL reservations per address. Each DQEMU
// instance (node) keeps one table:
//   * LL  records (address -> thread id).
//   * SC  succeeds only if the reservation at the address still belongs
//     to the storing thread; success consumes the entry.
//   * While the table is non-empty, every store snoops it and kills
//     reservations held by *other* threads on the stored address.
//   * When the DSM invalidates a page, all reservations on that page are
//     killed — the paper's deliberate false-positive: the SC retries, so
//     correctness is preserved even though the variable may be unchanged.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace dqemu::dbt {

class LlscTable {
 public:
  explicit LlscTable(StatsRegistry* stats = nullptr) : stats_(stats) {}

  /// Opens (or re-targets) a reservation for `tid` at `addr`.
  void on_ll(GuestAddr addr, GuestTid tid) {
    table_[addr] = tid;
    line_filter_ |= line_bit(addr);
    if (stats_ != nullptr) stats_->add("llsc.ll");
  }

  /// Conservative store-snoop filter: false proves that NO reservation can
  /// match `addr`, so on_store may be skipped entirely (the DBT's LL/SC
  /// fast path). True means "maybe" — the caller must do the full probe.
  /// Invariant: every live reservation's line bit is set; bits are only
  /// cleared when the table drains to empty, so a clear bit can never hide
  /// a real reservation (false positives OK, false negatives impossible).
  [[nodiscard]] bool may_match(GuestAddr addr) const {
    return (line_filter_ & line_bit(addr)) != 0;
  }

  /// Attempts to commit a SC by `tid` at `addr`. On success the
  /// reservation is consumed. The caller performs the actual store only
  /// when this returns true.
  [[nodiscard]] bool on_sc(GuestAddr addr, GuestTid tid) {
    auto it = table_.find(addr);
    if (it == table_.end() || it->second != tid) {
      if (stats_ != nullptr) stats_->add("llsc.sc_fail");
      return false;
    }
    table_.erase(it);
    if (table_.empty()) line_filter_ = 0;
    if (stats_ != nullptr) stats_->add("llsc.sc_success");
    return true;
  }

  /// Store snoop: a plain store by `tid` to `addr` kills another thread's
  /// reservation there. Cheap when the table is empty (the common case the
  /// paper relies on).
  void on_store(GuestAddr addr, GuestTid tid) {
    if (table_.empty()) return;
    auto it = table_.find(addr);
    if (it != table_.end() && it->second != tid) {
      table_.erase(it);
      if (table_.empty()) line_filter_ = 0;
      if (stats_ != nullptr) stats_->add("llsc.store_kill");
    }
  }

  /// DSM page invalidation: kill every reservation on the page
  /// (false-positive by design, see the header comment).
  void on_page_invalidate(std::uint32_t page, std::uint32_t page_shift) {
    if (table_.empty()) return;
    for (auto it = table_.begin(); it != table_.end();) {
      if ((it->first >> page_shift) == page) {
        it = table_.erase(it);
        if (stats_ != nullptr) stats_->add("llsc.page_inval_kill");
      } else {
        ++it;
      }
    }
    if (table_.empty()) line_filter_ = 0;
  }

  [[nodiscard]] bool has_reservation(GuestAddr addr) const {
    return table_.contains(addr);
  }
  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] bool empty() const { return table_.empty(); }

 private:
  /// One bit per 64-byte guest line (mod 64 lines). Set on LL, cleared
  /// only when the table drains to empty — see may_match.
  [[nodiscard]] static std::uint64_t line_bit(GuestAddr addr) {
    return 1ull << ((addr >> 6) & 63u);
  }

  std::unordered_map<GuestAddr, GuestTid> table_;
  std::uint64_t line_filter_ = 0;
  StatsRegistry* stats_;
};

}  // namespace dqemu::dbt
