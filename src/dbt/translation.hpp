// Translation blocks and the per-node translation cache.
//
// The DBT decodes guest basic blocks once into micro-op traces and caches
// them keyed by guest pc — QEMU's translate-once / execute-many structure.
// Blocks end at control transfers (branch/jump/syscall) or at kMaxBlockInsns.
// Direct-jump chaining links a block to its taken/fall-through successors
// so steady-state execution skips the hash lookup, as in TCG.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "isa/isa.hpp"
#include "mem/address_space.hpp"

namespace dqemu::dbt {

/// Maximum guest instructions per translation block.
inline constexpr std::uint32_t kMaxBlockInsns = 64;

/// One translated guest instruction.
struct MicroOp {
  isa::Insn insn;
  GuestAddr pc = 0;            ///< guest address of this instruction
  std::uint32_t cost_cycles = 0;  ///< per-execution cost from DbtConfig
};

/// A translated basic block.
struct TranslationBlock {
  GuestAddr start_pc = 0;
  std::vector<MicroOp> ops;
  /// Chained successors (nullptr until first taken); cleared on cache flush.
  TranslationBlock* next_taken = nullptr;
  TranslationBlock* next_fall = nullptr;

  [[nodiscard]] std::uint32_t insn_count() const {
    return static_cast<std::uint32_t>(ops.size());
  }
  /// Guest address just past the block.
  [[nodiscard]] GuestAddr end_pc() const {
    return start_pc + insn_count() * 4;
  }
};

/// Outcome of a translation attempt.
struct TranslateResult {
  TranslationBlock* tb = nullptr;  ///< nullptr on fault/error
  bool code_fault = false;         ///< code page not readable locally
  GuestAddr fault_addr = 0;        ///< page-granular faulting code address
  bool decode_error = false;       ///< invalid opcode encountered
  std::uint64_t translate_cycles = 0;  ///< one-time cost charged to caller
};

/// Per-node translation cache.
class TranslationCache {
 public:
  /// `space` must outlive the cache. `check_protection` is false in the
  /// single-node baseline (no DSM; code is always resident).
  TranslationCache(const mem::AddressSpace& space, const DbtConfig& config,
                   bool check_protection, StatsRegistry* stats = nullptr);

  /// Cached block at `pc`, or nullptr.
  [[nodiscard]] TranslationBlock* lookup(GuestAddr pc);

  /// Translates (and caches) the block at `pc`. If the block's code page
  /// is not locally readable the result reports a code fault and nothing
  /// is cached. Blocks never span a page boundary, so one fetched page
  /// always suffices.
  TranslateResult translate(GuestAddr pc);

  /// Drops every cached block whose code lies in `page` (guest code was
  /// invalidated/overwritten). Chain pointers referencing a dropped block
  /// are cleared; chains between surviving blocks are preserved.
  void invalidate_page(std::uint32_t page);

  /// Drops everything.
  void flush();

  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// Bumped whenever cached TranslationBlock pointers may have died
  /// (invalidate_page that dropped something, flush). Consumers holding
  /// raw block pointers outside the chain fields (the DBT's indirect-jump
  /// cache) compare against their snapshot and drop them on mismatch.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// True if `tb` is a currently-cached block (pointer identity; never
  /// dereferences `tb`). Test hook for chain-invalidation regressions.
  [[nodiscard]] bool contains_block(const TranslationBlock* tb) const;

 private:
  [[nodiscard]] std::uint32_t op_cost(const isa::Insn& insn) const;

  const mem::AddressSpace& space_;
  DbtConfig config_;
  bool check_protection_;
  StatsRegistry* stats_;
  std::uint64_t generation_ = 0;
  std::unordered_map<GuestAddr, std::unique_ptr<TranslationBlock>> blocks_;
};

}  // namespace dqemu::dbt
