// Translation blocks and the per-node translation cache.
//
// The DBT decodes guest basic blocks once into micro-op traces and caches
// them keyed by guest pc — QEMU's translate-once / execute-many structure.
// Blocks end at control transfers (branch/jump/syscall) or at kMaxBlockInsns.
// Direct-jump chaining links a block to its taken/fall-through successors
// so steady-state execution skips the hash lookup, as in TCG.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/status.hpp"
#include "common/types.hpp"
#include "dbt/superblock.hpp"
#include "isa/isa.hpp"
#include "mem/address_space.hpp"

namespace dqemu::dbt {

/// Maximum guest instructions per translation block.
inline constexpr std::uint32_t kMaxBlockInsns = 64;

/// One translated guest instruction.
struct MicroOp {
  isa::Insn insn;
  GuestAddr pc = 0;            ///< guest address of this instruction
  std::uint32_t cost_cycles = 0;  ///< per-execution cost from DbtConfig
};

/// A translated basic block.
struct TranslationBlock {
  GuestAddr start_pc = 0;
  std::vector<MicroOp> ops;
  /// Chained successors (nullptr until first taken); cleared on cache flush.
  TranslationBlock* next_taken = nullptr;
  TranslationBlock* next_fall = nullptr;

#if DQEMU_SUPERBLOCKS_ENABLED
  /// Superblock headed by this block, owned by the cache (nullptr until
  /// formed; cleared when the superblock dies).
  Superblock* sb = nullptr;
  /// Host-side hot counter: executions of this block in block (non-trace)
  /// mode. Cumulative, for the census; formation triggers each time it
  /// crosses `next_hot_trigger` (seeded with DbtConfig::sb_hot_threshold
  /// at translation, re-armed on every attempt).
  std::uint64_t hot_count = 0;
  std::uint64_t next_hot_trigger = 0;
  /// Last observed control-flow outcome, recorded by the engine; trace
  /// selection follows these edges.
  bool last_taken = false;
  GuestAddr last_indirect_target = 0;
#endif

  [[nodiscard]] std::uint32_t insn_count() const {
    return static_cast<std::uint32_t>(ops.size());
  }
  /// Guest address just past the block.
  [[nodiscard]] GuestAddr end_pc() const {
    return start_pc + insn_count() * 4;
  }
};

/// Outcome of a translation attempt.
struct TranslateResult {
  TranslationBlock* tb = nullptr;  ///< nullptr on fault/error
  bool code_fault = false;         ///< code page not readable locally
  GuestAddr fault_addr = 0;        ///< page-granular faulting code address
  bool decode_error = false;       ///< invalid opcode encountered
  std::uint64_t translate_cycles = 0;  ///< one-time cost charged to caller
};

/// Census rows for `--dump-hot` and the superblock tests.
struct HotBlockInfo {
  GuestAddr pc = 0;
  std::uint32_t insns = 0;
  std::uint64_t hot_count = 0;
  bool has_sb = false;
};
struct SuperblockInfo {
  GuestAddr entry_pc = 0;
  std::uint32_t blocks = 0;
  std::uint32_t insns = 0;
  std::uint32_t fused_pairs = 0;
  bool loops = false;
  std::uint64_t exec_count = 0;
  std::uint64_t side_exits = 0;
};

/// Superblock lifecycle events, surfaced to the embedder (Node) which
/// stamps them into the trace flight recorder under Cat::kDbt.
enum class SbEvent : std::uint8_t { kFormed, kInvalidated };

/// Per-node translation cache.
class TranslationCache {
 public:
  /// `space` must outlive the cache. `check_protection` is false in the
  /// single-node baseline (no DSM; code is always resident).
  TranslationCache(const mem::AddressSpace& space, const DbtConfig& config,
                   bool check_protection, StatsRegistry* stats = nullptr);

  /// Cached block at `pc`, or nullptr.
  [[nodiscard]] TranslationBlock* lookup(GuestAddr pc);

  /// Translates (and caches) the block at `pc`. If the block's code page
  /// is not locally readable the result reports a code fault and nothing
  /// is cached. Blocks never span a page boundary, so one fetched page
  /// always suffices.
  TranslateResult translate(GuestAddr pc);

  /// Drops every cached block whose code lies in `page` (guest code was
  /// invalidated/overwritten). Chain pointers referencing a dropped block
  /// are cleared; chains between surviving blocks are preserved.
  void invalidate_page(std::uint32_t page);

  /// Drops everything.
  void flush();

  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// Bumped whenever cached TranslationBlock pointers may have died
  /// (invalidate_page that dropped something, flush). Consumers holding
  /// raw block pointers outside the chain fields (the DBT's indirect-jump
  /// cache) compare against their snapshot and drop them on mismatch.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// True if `tb` is a currently-cached block (pointer identity; never
  /// dereferences `tb`). Test hook for chain-invalidation regressions.
  [[nodiscard]] bool contains_block(const TranslationBlock* tb) const;

  /// Per-execution virtual-time cost of one guest instruction — the single
  /// source the block translator and the superblock fusion pass both charge
  /// from, so fused ops cost exactly their unfused sequence.
  [[nodiscard]] std::uint32_t op_cost(const isa::Insn& insn) const;

  // ---- superblock tier (DESIGN.md section 15) --------------------------
  // All of these are safe to call with the tier compiled out; they then
  // return nullptr/empty/false and form nothing.

  /// Attempts to stitch the chain headed by `head` into a superblock
  /// (implemented in superblock.cpp). Returns the superblock now heading
  /// `head`, or nullptr if no viable trace exists. Host-side only: charges
  /// no virtual time and perturbs no counters shared with the block path.
  Superblock* maybe_form_superblock(TranslationBlock* head);

  /// True if `sb` is a currently-live superblock (pointer identity).
  [[nodiscard]] bool contains_superblock(const Superblock* sb) const;

  [[nodiscard]] std::size_t superblock_count() const;

  /// Live superblock entered at `entry_pc`, or nullptr. Test hook.
  [[nodiscard]] const Superblock* superblock_at(GuestAddr entry_pc) const;

  /// Census snapshots for --dump-hot (unsorted; callers order them).
  [[nodiscard]] std::vector<HotBlockInfo> hot_census() const;
  [[nodiscard]] std::vector<SuperblockInfo> superblock_census() const;

  /// Installs a superblock lifecycle observer (formation/invalidation).
  void set_sb_event_hook(std::function<void(SbEvent, const Superblock&)> hook);

 private:
  const mem::AddressSpace& space_;
  DbtConfig config_;
  bool check_protection_;
  StatsRegistry* stats_;
  std::uint64_t generation_ = 0;
  std::unordered_map<GuestAddr, std::unique_ptr<TranslationBlock>> blocks_;
#if DQEMU_SUPERBLOCKS_ENABLED
  std::unordered_map<GuestAddr, std::unique_ptr<Superblock>> superblocks_;
  std::function<void(SbEvent, const Superblock&)> sb_event_hook_;
#endif
};

}  // namespace dqemu::dbt
