// Superblock formation and the micro-op fusion pass (DESIGN.md section 15).
//
// Trace selection walks the chain of already-translated blocks headed by the
// hot block, following each block's recorded control-flow outcome
// (last_taken for branches, last_indirect_target for jalr, the static
// target for jal, fall-through for cut blocks). The walk stops at unknown
// or untranslated successors, at blocks already in the trace (except the
// head, which closes a loop), at syscall-terminated blocks, and at the
// configured size limits. Formation is host-side only: it uses the raw
// block map (not lookup(), which counts cache hits/misses) and charges no
// virtual time, so results are byte-identical with the tier disabled.

#include "dbt/translation.hpp"

#include <algorithm>

namespace dqemu::dbt {

#if DQEMU_SUPERBLOCKS_ENABLED

namespace {

using isa::Opcode;

constexpr std::uint32_t to_unsigned(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}

/// Single-cycle integer ALU ops the trace loop inlines (and the fusion pass
/// accepts as the ALU half of a fused pair). Excludes mul/div/rem, whose
/// less common semantics stay on the shared interpreter switch.
bool is_fast_alu(Opcode op) {
  switch (op) {
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kSlt:
    case Opcode::kSltu:
    case Opcode::kAddi:
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kSlti:
    case Opcode::kSltiu:
    case Opcode::kLui:
    case Opcode::kAuipc:
      return true;
    default:
      return false;
  }
}

/// True if the R/I/U-type ALU instruction reads integer register `reg`.
bool alu_reads(const isa::Insn& in, unsigned reg) {
  if (reg == 0) return false;  // r0 is hardwired; no dependence
  switch (isa::insn_info(in.op).format) {
    case isa::Format::kR:
      return in.rs1 == reg || in.rs2 == reg;
    case isa::Format::kI:
      return in.rs1 == reg;
    default:
      return false;  // U-type (lui/auipc) reads no register
  }
}

bool is_int_load(Opcode op) {
  switch (op) {
    case Opcode::kLb:
    case Opcode::kLbu:
    case Opcode::kLh:
    case Opcode::kLhu:
    case Opcode::kLw:
      return true;
    default:
      return false;
  }
}

bool is_int_store(Opcode op) {
  return op == Opcode::kSb || op == Opcode::kSh || op == Opcode::kSw;
}

bool is_cond_branch(Opcode op) {
  switch (op) {
    case Opcode::kBeq:
    case Opcode::kBne:
    case Opcode::kBlt:
    case Opcode::kBge:
    case Opcode::kBltu:
    case Opcode::kBgeu:
      return true;
    default:
      return false;
  }
}

/// Taken target of a branch/jal MicroOp (offsets are words past next pc).
GuestAddr taken_target(const MicroOp& mop) {
  return mop.pc + 4 + to_unsigned(mop.insn.imm) * 4u;
}

/// Successor start pc the trace walk should follow out of `tb`, or kSbNoPc
/// when unknown (indirect target never observed, or syscall).
GuestAddr successor_pc(const TranslationBlock* tb) {
  const MicroOp& last = tb->ops.back();
  if (!isa::insn_info(last.insn.op).ends_block) {
    return tb->end_pc();  // block cut by length/page limit: falls through
  }
  switch (last.insn.op) {
    case Opcode::kJal:
      return taken_target(last);
    case Opcode::kJalr:
      return tb->last_indirect_target != 0 ? tb->last_indirect_target
                                           : kSbNoPc;
    default:
      break;
  }
  if (is_cond_branch(last.insn.op)) {
    return tb->last_taken ? taken_target(last) : last.pc + 4;
  }
  return kSbNoPc;  // syscall
}

}  // namespace

Superblock* TranslationCache::maybe_form_superblock(TranslationBlock* head) {
  if (!config_.enable_superblocks) return nullptr;
  if (head->sb != nullptr) return head->sb;

  // ---- trace selection: walk the recorded chain ------------------------
  std::vector<const TranslationBlock*> chain;
  std::uint32_t total_insns = 0;
  bool loops = false;
  const TranslationBlock* cur = head;
  for (;;) {
    chain.push_back(cur);
    total_insns += cur->insn_count();
    if (chain.size() >= config_.sb_max_blocks) break;
    const GuestAddr next_pc = successor_pc(cur);
    if (next_pc == kSbNoPc) break;
    if (next_pc == head->start_pc) {
      loops = true;
      break;
    }
    const auto it = blocks_.find(next_pc);
    if (it == blocks_.end()) break;  // successor not (or no longer) cached
    const TranslationBlock* next = it->second.get();
    if (next->ops.back().insn.op == Opcode::kSyscall) break;
    if (std::find(chain.begin(), chain.end(), next) != chain.end()) break;
    if (total_insns + next->insn_count() > config_.sb_max_insns) break;
    cur = next;
  }
  if (head->ops.back().insn.op == Opcode::kSyscall) return nullptr;
  if (!loops && chain.size() < 2) return nullptr;  // nothing to stitch

  // ---- build the op trace with micro-op fusion -------------------------
  auto sb = std::make_unique<Superblock>();
  sb->entry_pc = head->start_pc;
  sb->loops = loops;
  sb->guest_insns = total_insns;
  std::vector<std::uint32_t> block_first(chain.size());
  std::vector<std::uint32_t> block_last(chain.size());

  for (std::size_t bi = 0; bi < chain.size(); ++bi) {
    const TranslationBlock* b = chain[bi];
    block_first[bi] = static_cast<std::uint32_t>(sb->ops.size());
    const bool has_next = bi + 1 < chain.size() || loops;
    const GuestAddr next_start = bi + 1 < chain.size()
                                     ? chain[bi + 1]->start_pc
                                     : (loops ? head->start_pc : kSbNoPc);
    const std::size_t n = b->ops.size();
    std::size_t j = 0;
    while (j < n) {
      const MicroOp& m = b->ops[j];
      SbOp op;
      op.pc = m.pc;
      op.a = m.insn;
      op.cost_a = m.cost_cycles;
      const Opcode aop = m.insn.op;

      // Fusion: pair `m` with its successor when the pair matches one of
      // the recognized shapes. Costs are copied from the MicroOps, never
      // recomputed, so the fused op charges its unfused sequence exactly.
      bool fused = false;
      if (config_.sb_fusion && j + 1 < n) {
        const MicroOp& m2 = b->ops[j + 1];
        const Opcode bop = m2.insn.op;
        if (is_fast_alu(aop) && m.insn.rd != 0 && is_cond_branch(bop) &&
            (m2.insn.rs1 == m.insn.rd || m2.insn.rs2 == m.insn.rd)) {
          op.kind = SbOpKind::kCmpBranch;  // branches only appear last
          fused = true;
        } else if (is_int_load(aop) && m.insn.rd != 0 &&
                   is_fast_alu(bop) && alu_reads(m2.insn, m.insn.rd)) {
          op.kind = SbOpKind::kLoadAlu;
          op.mem_bytes = isa::insn_info(aop).mem_bytes;
          fused = true;
        } else if (is_fast_alu(aop) && m.insn.rd != 0 &&
                   is_int_store(bop) && m2.insn.rs2 == m.insn.rd) {
          op.kind = SbOpKind::kAluStore;
          op.mem_bytes = isa::insn_info(bop).mem_bytes;
          fused = true;
        }
        if (fused) {
          op.n_insns = 2;
          op.b = m2.insn;
          op.cost_b = m2.cost_cycles;
          ++sb->fused_pairs;
        }
      }
      if (!fused) {
        if (is_cond_branch(aop)) {
          op.kind = SbOpKind::kBranch;
        } else if (aop == Opcode::kJal) {
          op.kind = SbOpKind::kJal;
        } else if (aop == Opcode::kJalr) {
          op.kind = SbOpKind::kJalr;
        } else if (is_fast_alu(aop)) {
          op.kind = SbOpKind::kAluFast;
        } else if (is_int_load(aop) || aop == Opcode::kFld) {
          op.kind = SbOpKind::kMemLoad;
          op.mem_bytes = isa::insn_info(aop).mem_bytes;
        } else if (is_int_store(aop) || aop == Opcode::kFsd) {
          op.kind = SbOpKind::kMemStore;
          op.mem_bytes = isa::insn_info(aop).mem_bytes;
        } else {
          // mul/div/rem, LL/SC, FP, fence, hint. Never a control op: those
          // all take the dedicated guarded kinds above, so the trace loop's
          // kSimple fallback needs no chain-slot access.
          op.kind = SbOpKind::kSimple;
        }
      }
      j += op.n_insns;

      // Terminal wiring: the op consuming the block's last instruction
      // either branches (guarded kinds, with on-trace target `next_start`)
      // or falls through a cut-block boundary.
      if (j >= n) {
        switch (op.kind) {
          case SbOpKind::kBranch:
          case SbOpKind::kCmpBranch: {
            const isa::Insn& br =
                op.kind == SbOpKind::kCmpBranch ? op.b : op.a;
            const GuestAddr bpc =
                op.kind == SbOpKind::kCmpBranch ? op.pc + 4 : op.pc;
            op.fall_pc = bpc + 4;
            op.taken_pc = bpc + 4 + to_unsigned(br.imm) * 4u;
            op.on_trace_pc = has_next ? next_start : kSbNoPc;
            break;
          }
          case SbOpKind::kJal:
            op.taken_pc = taken_target(b->ops.back());
            op.on_trace_pc = has_next ? next_start : kSbNoPc;
            break;
          case SbOpKind::kJalr:
            op.on_trace_pc = has_next ? next_start : kSbNoPc;
            break;
          default:
            // Cut block: plain fall-through boundary (quantum guard point).
            op.boundary = true;
            op.boundary_pc = b->end_pc();
            break;
        }
      }
      sb->ops.push_back(op);
    }
    block_last[bi] = static_cast<std::uint32_t>(sb->ops.size()) - 1;
  }

  // Patch continuation indices now that every block's first op is placed.
  for (std::size_t bi = 0; bi < chain.size(); ++bi) {
    sb->ops[block_last[bi]].next_index =
        bi + 1 < chain.size() ? block_first[bi + 1]
                              : (loops ? 0u : kSbExitIndex);
  }

  sb->block_pcs.reserve(chain.size());
  for (const TranslationBlock* b : chain) {
    sb->block_pcs.push_back(b->start_pc);
    const std::uint32_t page = space_.page_of(b->start_pc);
    if (std::find(sb->pages.begin(), sb->pages.end(), page) ==
        sb->pages.end()) {
      sb->pages.push_back(page);
    }
  }

  Superblock* raw = sb.get();
  superblocks_[head->start_pc] = std::move(sb);
  head->sb = raw;
  if (stats_ != nullptr) {
    stats_->add("dbt.sb_formed");
    stats_->add("dbt.sb_blocks", raw->block_pcs.size());
    stats_->add("dbt.sb_insns", raw->guest_insns);
    stats_->add("dbt.fused_pairs", raw->fused_pairs);
  }
  if (sb_event_hook_) sb_event_hook_(SbEvent::kFormed, *raw);
  return raw;
}

#else  // !DQEMU_SUPERBLOCKS_ENABLED

Superblock* TranslationCache::maybe_form_superblock(TranslationBlock* head) {
  (void)head;
  return nullptr;
}

#endif

}  // namespace dqemu::dbt
