// Superblock traces: the DBT's IR-less hot-path tier (DESIGN.md section 15).
//
// When a TranslationBlock crosses its hot threshold, the translation cache
// stitches the chain of blocks it heads into a superblock — one straight-line
// trace across the recorded taken/fall-through/indirect edges, with guards
// where the live path may leave the trace. A micro-op fusion pass combines
// adjacent guest instructions (compare+branch, load+ALU, ALU+store) and
// pre-resolves immediate-address memory ops to their TLB line, so the
// specialized dispatch loop in ExecEngine executes hot straight-line guest
// code with one dense switch per (possibly fused) op instead of per-op
// dispatch through the full interpreter switch.
//
// Everything here is host-side only: a fused op charges exactly the
// virtual-time cost of its unfused sequence, guards reproduce the block
// engine's quantum stop points, and a superblock never outlives any of its
// constituent blocks, so virtual-time results are byte-identical with
// superblocks compiled out (-DDQEMU_ENABLE_SUPERBLOCKS=OFF) or disabled at
// runtime (DbtConfig::enable_superblocks = false).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "isa/isa.hpp"

/// Compile-time gate for the superblock tier (CMake option
/// DQEMU_ENABLE_SUPERBLOCKS; see src/dbt/CMakeLists.txt).
#ifndef DQEMU_SUPERBLOCKS_ENABLED
#define DQEMU_SUPERBLOCKS_ENABLED 1
#endif

namespace dqemu::dbt {

/// Never a valid page-aligned tag, instruction address or branch target
/// (instruction addresses are 4-byte aligned).
inline constexpr GuestAddr kSbNoPc = ~GuestAddr{0};

/// "Leave the trace" marker for SbOp::next_index.
inline constexpr std::uint32_t kSbExitIndex = ~std::uint32_t{0};

/// Dispatch kinds for the specialized trace loop. The fused kinds cover the
/// pairs the fusion pass recognizes; the k*Fast kinds are single guest
/// instructions with an inlined fast-path implementation; kSimple falls back
/// to the shared interpreter switch (never a control-flow op: formation
/// keeps those in their dedicated guarded kinds).
enum class SbOpKind : std::uint8_t {
  kAluFast,    ///< single-cycle integer ALU op, inlined mini-switch
  kMemLoad,    ///< load (incl. fld) with a pre-resolved per-op TLB line
  kMemStore,   ///< store (incl. fsd) with a pre-resolved per-op TLB line
  kLoadAlu,    ///< fused: integer load + ALU op consuming the loaded rd
  kAluStore,   ///< fused: ALU op + store of the produced rd
  kCmpBranch,  ///< fused: ALU op + terminal branch testing the produced rd
  kBranch,     ///< terminal conditional branch (guard)
  kJal,        ///< terminal direct call/jump (static target)
  kJalr,       ///< terminal indirect jump (guard on the recorded target)
  kSimple,     ///< anything else: mul/div, LL/SC, FP, fence, hint
};

/// One (possibly fused) op of a superblock trace.
///
/// Cost accounting: `cost_a`/`cost_b` are copied verbatim from the
/// constituent MicroOps, so a fused op charges exactly the virtual-time cost
/// of its unfused sequence and partial retirement on a fault (the load half
/// of kLoadAlu faulting retires nothing; the store half of kAluStore
/// faulting retires only the ALU op) matches the block engine insn-for-insn.
struct SbOp {
  SbOpKind kind = SbOpKind::kSimple;
  std::uint8_t n_insns = 1;      ///< guest instructions covered (1 or 2)
  std::uint8_t mem_bytes = 0;    ///< access width for the mem half (0 if none)
  bool boundary = false;         ///< cut-block boundary follows this op
  isa::Insn a;                   ///< first (or only) guest instruction
  isa::Insn b;                   ///< fused companion (valid when n_insns == 2)
  GuestAddr pc = 0;              ///< guest pc of `a`; companion is at pc + 4
  std::uint32_t cost_a = 0;      ///< virtual cost of `a` (== its MicroOp)
  std::uint32_t cost_b = 0;      ///< virtual cost of `b`
  GuestAddr taken_pc = 0;        ///< branch/jal taken target
  GuestAddr fall_pc = 0;         ///< branch fall-through target
  /// Successor start pc that keeps execution on the trace (kSbNoPc when the
  /// trace ends after this op regardless of direction).
  GuestAddr on_trace_pc = kSbNoPc;
  /// Trace index to continue at when staying on-trace (kSbExitIndex: leave).
  std::uint32_t next_index = kSbExitIndex;
  /// Resume pc for a cut-block boundary (valid when `boundary`).
  GuestAddr boundary_pc = 0;
  /// Pre-resolved TLB line for the mem half: page-aligned guest address
  /// proven identity-mapped, in bounds and accessible for this op's access
  /// type. Reset (kSbNoPc) whenever the engine's superblock memory epoch
  /// moves past Superblock::mem_epoch.
  GuestAddr tlb_tag = kSbNoPc;
  /// Host base of that page (AddressSpace page storage is never freed, so
  /// the pointer is stable; only read when `tlb_tag` matches). Adopted only
  /// for stores or already-materialized pages — a load must never force
  /// materialization, which is protocol-observable.
  std::uint8_t* host_page = nullptr;
};

/// A formed trace. Owned by the TranslationCache, keyed by entry pc, and
/// pointed to by its head block; dies with any constituent block (see
/// TranslationCache::invalidate_page).
struct Superblock {
  GuestAddr entry_pc = 0;
  std::vector<SbOp> ops;
  /// Constituent block start pcs, in trace order (census/debugging).
  std::vector<GuestAddr> block_pcs;
  /// Unique code pages of the constituent blocks (invalidation: a block
  /// never spans a page, so page membership exactly captures "contains a
  /// block that invalidate_page(page) drops").
  std::vector<std::uint32_t> pages;
  std::uint32_t guest_insns = 0;
  std::uint32_t fused_pairs = 0;
  bool loops = false;  ///< last block continues at entry_pc

  // Host-side census, maintained by the engine.
  std::uint64_t exec_count = 0;
  std::uint64_t side_exits = 0;
  /// Engine memory epoch at which the per-op TLB tags were last valid.
  std::uint64_t mem_epoch = 0;
};

}  // namespace dqemu::dbt
