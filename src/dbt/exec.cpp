#include "dbt/exec.hpp"

#include <cmath>
#include <cstring>
#include <cstdio>
#include <limits>

namespace dqemu::dbt {
namespace {

using isa::Opcode;

std::string format_addr_error(const char* what, GuestAddr addr, GuestAddr pc) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%s at guest addr 0x%08x (pc 0x%08x)", what,
                addr, pc);
  return buf;
}

constexpr std::int32_t to_signed(std::uint32_t v) {
  return static_cast<std::int32_t>(v);
}
constexpr std::uint32_t to_unsigned(std::int32_t v) {
  return static_cast<std::uint32_t>(v);
}

/// double -> int32 with saturation (avoids UB on out-of-range casts).
std::int32_t fp_to_int(double v) {
  if (std::isnan(v)) return 0;
  if (v >= 2147483647.0) return std::numeric_limits<std::int32_t>::max();
  if (v <= -2147483648.0) return std::numeric_limits<std::int32_t>::min();
  return static_cast<std::int32_t>(v);
}

}  // namespace

ExecEngine::ExecEngine(mem::AddressSpace& space, const mem::ShadowMap* shadow,
                       LlscTable& llsc, TranslationCache& cache,
                       const DbtConfig& config, bool check_protection,
                       StatsRegistry* stats)
    : space_(space),
      shadow_(shadow),
      llsc_(llsc),
      cache_(cache),
      config_(config),
      check_protection_(check_protection),
      stats_(stats) {}

#if DQEMU_FASTPATH_ENABLED
void ExecEngine::sync_fast_caches() {
  // Nothing mutates protections, the shadow map or the translation cache
  // while run() is on the stack (sequential DES: DSM messages are handled
  // in other event callbacks), so one check per quantum suffices.
  const std::uint64_t protection = space_.protection_generation();
  const std::uint64_t shadow = shadow_ != nullptr ? shadow_->generation() : 0;
  if (protection != seen_protection_gen_ || shadow != seen_shadow_gen_) {
    tlb_.fill(TlbEntry{});
    seen_protection_gen_ = protection;
    seen_shadow_gen_ = shadow;
  }
  const std::uint64_t tcache = cache_.generation();
  if (tcache != seen_tcache_gen_) {
    jmp_cache_.fill(JmpCacheEntry{});
    seen_tcache_gen_ = tcache;
  }
}
#endif

#if DQEMU_SUPERBLOCKS_ENABLED
void ExecEngine::sync_sb_epoch() {
  // Same invariant as sync_fast_caches(): protections and the shadow map
  // are stable for the duration of one run(), so traces entered this
  // quantum may keep their per-op TLB lines until the next epoch move.
  const std::uint64_t protection = space_.protection_generation();
  const std::uint64_t shadow = shadow_ != nullptr ? shadow_->generation() : 0;
  if (protection != sb_seen_protection_gen_ ||
      shadow != sb_seen_shadow_gen_) {
    ++sb_mem_epoch_;
    sb_seen_protection_gen_ = protection;
    sb_seen_shadow_gen_ = shadow;
  }
}
#endif

void ExecEngine::invalidate_fast_caches() {
#if DQEMU_FASTPATH_ENABLED
  tlb_.fill(TlbEntry{});
  jmp_cache_.fill(JmpCacheEntry{});
#endif
#if DQEMU_SUPERBLOCKS_ENABLED
  ++sb_mem_epoch_;  // orphan every superblock's per-op TLB lines
#endif
}

ExecResult ExecEngine::run(CpuContext& ctx, std::uint64_t max_insns) {
#if DQEMU_FASTPATH_ENABLED
  if (config_.enable_fastpath) sync_fast_caches();
#endif
#if DQEMU_SUPERBLOCKS_ENABLED
  if (config_.enable_superblocks) sync_sb_epoch();
#endif
  HotCounters hot;
  ExecResult result = run_loop(ctx, max_insns, hot);
  if (stats_ != nullptr) {
    if (hot.chain_hit != 0) stats_->add("dbt.chain_hit", hot.chain_hit);
    if (hot.hints != 0) stats_->add("dbt.hints", hot.hints);
    if (hot.tlb_hit != 0) stats_->add("dbt.tlb_hit", hot.tlb_hit);
    if (hot.tlb_miss != 0) stats_->add("dbt.tlb_miss", hot.tlb_miss);
    if (hot.jmp_cache_hit != 0) {
      stats_->add("dbt.jmp_cache_hit", hot.jmp_cache_hit);
    }
    if (hot.llsc_fastpath != 0) {
      stats_->add("dbt.llsc_fastpath", hot.llsc_fastpath);
    }
    if (hot.sb_exec != 0) stats_->add("dbt.sb_exec", hot.sb_exec);
    if (hot.sb_side_exit != 0) {
      stats_->add("dbt.sb_side_exit", hot.sb_side_exit);
    }
    if (hot.fused_ops != 0) stats_->add("dbt.fused_ops", hot.fused_ops);
  }
  return result;
}

ExecResult ExecEngine::run_loop(CpuContext& ctx, std::uint64_t max_insns,
                                HotCounters& hot) {
  ExecResult result;

  auto& gpr = ctx.gpr;
  auto& fpr = ctx.fpr;
  auto write_gpr = [&](unsigned rd, std::uint32_t value) {
    if (rd != 0) gpr[rd] = value;
  };

#if DQEMU_FASTPATH_ENABLED
  const bool fast = config_.enable_fastpath;
#endif
#if DQEMU_SUPERBLOCKS_ENABLED
  const bool sb_on = config_.enable_superblocks;
#endif
  [[maybe_unused]] const GuestAddr page_mask = space_.page_size() - 1;

  // Validates a data access; on failure fills `result` and returns false.
  // `addr` is already shadow-resolved.
  auto check_access = [&](GuestAddr addr, unsigned bytes, bool write,
                          GuestAddr pc) -> bool {
    if (static_cast<std::uint64_t>(addr) + bytes > space_.size()) {
      result.reason = StopReason::kGuestError;
      result.error = format_addr_error("out-of-bounds access", addr, pc);
      return false;
    }
    if ((addr & (bytes - 1)) != 0) {
      result.reason = StopReason::kGuestError;
      result.error = format_addr_error("misaligned access", addr, pc);
      return false;
    }
    if (check_protection_) {
      const mem::PageAccess access = space_.access(space_.page_of(addr));
      const bool ok = write ? access == mem::PageAccess::kReadWrite
                            : access != mem::PageAccess::kNone;
      if (!ok) {
        result.reason = StopReason::kPageFault;
        result.fault_addr = addr;
        result.fault_is_write = write;
        return false;
      }
    }
    return true;
  };

  // Resolves `vaddr` through the shadow map and validates the access; the
  // resolved address lands in `out`. On failure fills `result` and returns
  // false. Fast path: a software-TLB hit proves the page is unsplit
  // (identity mapping), in bounds and sufficiently accessible, so the
  // whole shadow-resolve + page-table walk collapses to one tag compare.
  auto mem_access = [&](GuestAddr vaddr, unsigned bytes, bool write,
                        GuestAddr pc, GuestAddr& out) -> bool {
#if DQEMU_FASTPATH_ENABLED
    if (fast) {
      const TlbEntry& entry = tlb_slot(vaddr);
      if (entry.tag == (vaddr & ~page_mask) &&
          (write ? entry.allow_write : entry.allow_read) &&
          (vaddr & (bytes - 1)) == 0) {
        ++hot.tlb_hit;
        out = vaddr;
        return true;
      }
    }
#endif
    const GuestAddr addr =
        shadow_ != nullptr ? shadow_->translate(vaddr) : vaddr;
    if (!check_access(addr, bytes, write, pc)) return false;
#if DQEMU_FASTPATH_ENABLED
    if (fast) {
      ++hot.tlb_miss;
      if (addr == vaddr) {
        // Identity resolution == the page is unsplit (split shards never
        // map to their own page), so the whole page is cacheable; a
        // successful in-bounds access proves the page-aligned tag covers
        // only in-bounds addresses (the space is page-granular).
        TlbEntry& entry = tlb_slot(vaddr);
        entry.tag = vaddr & ~page_mask;
        if (check_protection_) {
          const mem::PageAccess access =
              space_.access(space_.page_of(vaddr));
          entry.allow_read = access != mem::PageAccess::kNone;
          entry.allow_write = access == mem::PageAccess::kReadWrite;
        } else {
          entry.allow_read = true;
          entry.allow_write = true;
        }
      }
    }
#endif
    out = addr;
    return true;
  };

  // Store snoop of the LL/SC table. Fast path: the table's line filter
  // proves most stores cannot break any reservation without a hash probe.
  auto snoop_store = [&](GuestAddr addr) {
#if DQEMU_FASTPATH_ENABLED
    if (fast) {
      if (llsc_.may_match(addr)) {
        llsc_.on_store(addr, ctx.tid);
      } else {
        ++hot.llsc_fastpath;
      }
      return;
    }
#endif
    llsc_.on_store(addr, ctx.tid);
  };

  // Direct-jump chaining with the indirect-jump cache as a second level:
  // a chain hit skips everything; a chain miss consults the jump cache
  // before falling back to the translation-cache hash lookup.
  auto chain_to = [&](TranslationBlock*& slot,
                      GuestAddr target) -> TranslationBlock* {
    if (slot != nullptr && slot->start_pc == target) {
      ++hot.chain_hit;
      return slot;
    }
#if DQEMU_FASTPATH_ENABLED
    if (fast) {
      const JmpCacheEntry& entry = jmp_slot(target);
      if (entry.pc == target) {
        ++hot.jmp_cache_hit;
        slot = entry.tb;
        return entry.tb;
      }
    }
#endif
    TranslationBlock* found = cache_.lookup(target);
    if (found != nullptr) slot = found;
    return found;
  };

  // The interpreter switch, shared by the block loop (every op) and the
  // superblock trace loop (kSimple fallback only, always with cur ==
  // nullptr — formation keeps control flow out of kSimple, so the chain
  // slots are never touched there). Plain ops return kNext and the caller
  // charges insns/cycles; control ops set ctx.pc (and next_tb via `cur`)
  // and return kEnd; faults and syscalls finalize `result` and return
  // kReturn (syscall does its own accounting, faults retire nothing).
  enum class OpOut : std::uint8_t { kNext, kEnd, kReturn };
  TranslationBlock* next_tb = nullptr;

  auto exec_op = [&](const isa::Insn& in, GuestAddr pc, std::uint32_t cost,
                     TranslationBlock* cur) -> OpOut {
    switch (in.op) {
      // ---- integer R-type ------------------------------------------
      case Opcode::kAdd: write_gpr(in.rd, gpr[in.rs1] + gpr[in.rs2]); break;
      case Opcode::kSub: write_gpr(in.rd, gpr[in.rs1] - gpr[in.rs2]); break;
      case Opcode::kMul: write_gpr(in.rd, gpr[in.rs1] * gpr[in.rs2]); break;
      case Opcode::kDiv: {
        const std::int32_t a = to_signed(gpr[in.rs1]);
        const std::int32_t b = to_signed(gpr[in.rs2]);
        std::int32_t q;
        if (b == 0) {
          q = -1;  // RISC-style: division by zero yields all ones
        } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
          q = a;   // overflow wraps
        } else {
          q = a / b;
        }
        write_gpr(in.rd, to_unsigned(q));
        break;
      }
      case Opcode::kDivu: {
        const std::uint32_t b = gpr[in.rs2];
        write_gpr(in.rd, b == 0 ? ~0u : gpr[in.rs1] / b);
        break;
      }
      case Opcode::kRem: {
        const std::int32_t a = to_signed(gpr[in.rs1]);
        const std::int32_t b = to_signed(gpr[in.rs2]);
        std::int32_t r;
        if (b == 0) {
          r = a;
        } else if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
          r = 0;
        } else {
          r = a % b;
        }
        write_gpr(in.rd, to_unsigned(r));
        break;
      }
      case Opcode::kRemu: {
        const std::uint32_t b = gpr[in.rs2];
        write_gpr(in.rd, b == 0 ? gpr[in.rs1] : gpr[in.rs1] % b);
        break;
      }
      case Opcode::kAnd: write_gpr(in.rd, gpr[in.rs1] & gpr[in.rs2]); break;
      case Opcode::kOr: write_gpr(in.rd, gpr[in.rs1] | gpr[in.rs2]); break;
      case Opcode::kXor: write_gpr(in.rd, gpr[in.rs1] ^ gpr[in.rs2]); break;
      case Opcode::kSll: write_gpr(in.rd, gpr[in.rs1] << (gpr[in.rs2] & 31)); break;
      case Opcode::kSrl: write_gpr(in.rd, gpr[in.rs1] >> (gpr[in.rs2] & 31)); break;
      case Opcode::kSra:
        write_gpr(in.rd, to_unsigned(to_signed(gpr[in.rs1]) >>
                                     (gpr[in.rs2] & 31)));
        break;
      case Opcode::kSlt:
        write_gpr(in.rd, to_signed(gpr[in.rs1]) < to_signed(gpr[in.rs2]) ? 1 : 0);
        break;
      case Opcode::kSltu:
        write_gpr(in.rd, gpr[in.rs1] < gpr[in.rs2] ? 1 : 0);
        break;

      // ---- integer I-type ------------------------------------------
      case Opcode::kAddi:
        write_gpr(in.rd, gpr[in.rs1] + to_unsigned(in.imm));
        break;
      case Opcode::kAndi:
        write_gpr(in.rd, gpr[in.rs1] & to_unsigned(in.imm));
        break;
      case Opcode::kOri:
        write_gpr(in.rd, gpr[in.rs1] | to_unsigned(in.imm));
        break;
      case Opcode::kXori:
        write_gpr(in.rd, gpr[in.rs1] ^ to_unsigned(in.imm));
        break;
      case Opcode::kSlli:
        write_gpr(in.rd, gpr[in.rs1] << (in.imm & 31));
        break;
      case Opcode::kSrli:
        write_gpr(in.rd, gpr[in.rs1] >> (in.imm & 31));
        break;
      case Opcode::kSrai:
        write_gpr(in.rd, to_unsigned(to_signed(gpr[in.rs1]) >> (in.imm & 31)));
        break;
      case Opcode::kSlti:
        write_gpr(in.rd, to_signed(gpr[in.rs1]) < in.imm ? 1 : 0);
        break;
      case Opcode::kSltiu:
        write_gpr(in.rd, gpr[in.rs1] < to_unsigned(in.imm) ? 1 : 0);
        break;
      case Opcode::kLui:
        write_gpr(in.rd, to_unsigned(in.imm) << 12);
        break;
      case Opcode::kAuipc:
        write_gpr(in.rd, pc + (to_unsigned(in.imm) << 12));
        break;

      // ---- loads ----------------------------------------------------
      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLw:
      case Opcode::kLl: {
        const unsigned bytes = isa::insn_info(in.op).mem_bytes;
        GuestAddr addr;
        if (!mem_access(gpr[in.rs1] + to_unsigned(in.imm), bytes,
                        /*write=*/false, pc, addr)) {
          ctx.pc = pc;  // re-execute after the fault is serviced
          return OpOut::kReturn;
        }
        const std::uint64_t raw = space_.load(addr, bytes);
        std::uint32_t value = 0;
        switch (in.op) {
          case Opcode::kLb:
            value = to_unsigned(static_cast<std::int8_t>(raw));
            break;
          case Opcode::kLbu: value = static_cast<std::uint8_t>(raw); break;
          case Opcode::kLh:
            value = to_unsigned(static_cast<std::int16_t>(raw));
            break;
          case Opcode::kLhu: value = static_cast<std::uint16_t>(raw); break;
          default: value = static_cast<std::uint32_t>(raw); break;
        }
        write_gpr(in.rd, value);
        if (in.op == Opcode::kLl) llsc_.on_ll(addr, ctx.tid);
        break;
      }
      case Opcode::kFld: {
        GuestAddr addr;
        if (!mem_access(gpr[in.rs1] + to_unsigned(in.imm), 8,
                        /*write=*/false, pc, addr)) {
          ctx.pc = pc;
          return OpOut::kReturn;
        }
        const std::uint64_t raw = space_.load(addr, 8);
        double value;
        static_assert(sizeof value == 8);
        std::memcpy(&value, &raw, 8);
        fpr[in.rd] = value;
        break;
      }

      // ---- stores ---------------------------------------------------
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw: {
        const unsigned bytes = isa::insn_info(in.op).mem_bytes;
        GuestAddr addr;
        if (!mem_access(gpr[in.rs1] + to_unsigned(in.imm), bytes,
                        /*write=*/true, pc, addr)) {
          ctx.pc = pc;
          return OpOut::kReturn;
        }
        space_.store(addr, gpr[in.rs2], bytes);
        snoop_store(addr);
        break;
      }
      case Opcode::kFsd: {
        GuestAddr addr;
        if (!mem_access(gpr[in.rs1] + to_unsigned(in.imm), 8,
                        /*write=*/true, pc, addr)) {
          ctx.pc = pc;
          return OpOut::kReturn;
        }
        std::uint64_t raw;
        std::memcpy(&raw, &fpr[in.rs2], 8);
        space_.store(addr, raw, 8);
        snoop_store(addr);
        break;
      }
      case Opcode::kSc: {
        GuestAddr addr;
        if (!mem_access(gpr[in.rs1], 4, /*write=*/true, pc, addr)) {
          ctx.pc = pc;
          return OpOut::kReturn;
        }
        if (llsc_.on_sc(addr, ctx.tid)) {
          space_.store(addr, gpr[in.rs2], 4);
          write_gpr(in.rd, 0);
        } else {
          write_gpr(in.rd, 1);
        }
        break;
      }

      // ---- control flow ---------------------------------------------
      case Opcode::kBeq:
      case Opcode::kBne:
      case Opcode::kBlt:
      case Opcode::kBge:
      case Opcode::kBltu:
      case Opcode::kBgeu: {
        bool taken = false;
        switch (in.op) {
          case Opcode::kBeq: taken = gpr[in.rs1] == gpr[in.rs2]; break;
          case Opcode::kBne: taken = gpr[in.rs1] != gpr[in.rs2]; break;
          case Opcode::kBlt:
            taken = to_signed(gpr[in.rs1]) < to_signed(gpr[in.rs2]);
            break;
          case Opcode::kBge:
            taken = to_signed(gpr[in.rs1]) >= to_signed(gpr[in.rs2]);
            break;
          case Opcode::kBltu: taken = gpr[in.rs1] < gpr[in.rs2]; break;
          default: taken = gpr[in.rs1] >= gpr[in.rs2]; break;
        }
        const GuestAddr target =
            taken ? pc + 4 + to_unsigned(in.imm) * 4u : pc + 4;
        ctx.pc = target;
#if DQEMU_SUPERBLOCKS_ENABLED
        cur->last_taken = taken;  // trace selection follows this edge
#endif
        // Direct-jump chaining (targets are static).
        next_tb = chain_to(taken ? cur->next_taken : cur->next_fall, target);
        return OpOut::kEnd;
      }
      case Opcode::kJal: {
        const GuestAddr target = pc + 4 + to_unsigned(in.imm) * 4u;
        write_gpr(in.rd, pc + 4);
        ctx.pc = target;
        next_tb = chain_to(cur->next_taken, target);
        return OpOut::kEnd;
      }
      case Opcode::kJalr: {
        const GuestAddr target = (gpr[in.rs1] + to_unsigned(in.imm)) & ~3u;
        write_gpr(in.rd, pc + 4);
        ctx.pc = target;  // indirect: no chain slot
#if DQEMU_SUPERBLOCKS_ENABLED
        cur->last_indirect_target = target;
#endif
#if DQEMU_FASTPATH_ENABLED
        if (fast) {
          const JmpCacheEntry& entry = jmp_slot(target);
          if (entry.pc == target) {
            ++hot.jmp_cache_hit;
            next_tb = entry.tb;
          }
        }
#endif
        return OpOut::kEnd;
      }

      // ---- system ----------------------------------------------------
      case Opcode::kFence:
        break;  // sequential DES: ordering is already total
      case Opcode::kSyscall:
        ctx.pc = pc + 4;
        ++result.insns;
        result.exec_cycles += cost;
        result.reason = StopReason::kSyscall;
        result.syscall_num = in.imm;
        return OpOut::kReturn;
      case Opcode::kHint:
        // 0xFFFF is the "no group" sentinel (N-format immediates are
        // zero-extended on decode).
        ctx.hint_group = in.imm == 0xFFFF ? -1 : in.imm;
        ++hot.hints;
        break;

      // ---- FP ---------------------------------------------------------
      case Opcode::kFadd: fpr[in.rd] = fpr[in.rs1] + fpr[in.rs2]; break;
      case Opcode::kFsub: fpr[in.rd] = fpr[in.rs1] - fpr[in.rs2]; break;
      case Opcode::kFmul: fpr[in.rd] = fpr[in.rs1] * fpr[in.rs2]; break;
      case Opcode::kFdiv: fpr[in.rd] = fpr[in.rs1] / fpr[in.rs2]; break;
      case Opcode::kFmin: fpr[in.rd] = std::fmin(fpr[in.rs1], fpr[in.rs2]); break;
      case Opcode::kFmax: fpr[in.rd] = std::fmax(fpr[in.rs1], fpr[in.rs2]); break;
      case Opcode::kFneg: fpr[in.rd] = -fpr[in.rs1]; break;
      case Opcode::kFabs: fpr[in.rd] = std::fabs(fpr[in.rs1]); break;
      case Opcode::kFmov: fpr[in.rd] = fpr[in.rs1]; break;
      case Opcode::kFcvtdw:
        fpr[in.rd] = static_cast<double>(to_signed(gpr[in.rs1]));
        break;
      case Opcode::kFcvtwd:
        write_gpr(in.rd, to_unsigned(fp_to_int(fpr[in.rs1])));
        break;
      case Opcode::kFlt:
        write_gpr(in.rd, fpr[in.rs1] < fpr[in.rs2] ? 1 : 0);
        break;
      case Opcode::kFle:
        write_gpr(in.rd, fpr[in.rs1] <= fpr[in.rs2] ? 1 : 0);
        break;
      case Opcode::kFeq:
        write_gpr(in.rd, fpr[in.rs1] == fpr[in.rs2] ? 1 : 0);
        break;
      case Opcode::kFsqrt: fpr[in.rd] = std::sqrt(fpr[in.rs1]); break;
      case Opcode::kFexp: fpr[in.rd] = std::exp(fpr[in.rs1]); break;
      case Opcode::kFlog: fpr[in.rd] = std::log(fpr[in.rs1]); break;
      case Opcode::kFpow: fpr[in.rd] = std::pow(fpr[in.rs1], fpr[in.rs2]); break;
      case Opcode::kFerf: fpr[in.rd] = std::erf(fpr[in.rs1]); break;
      case Opcode::kFsin: fpr[in.rd] = std::sin(fpr[in.rs1]); break;
      case Opcode::kFcos: fpr[in.rd] = std::cos(fpr[in.rs1]); break;
    }
    return OpOut::kNext;
  };

#if DQEMU_SUPERBLOCKS_ENABLED
  // ---- superblock trace dispatch (DESIGN.md section 15) ----------------
  // The specialized loop below is the hot-path payoff: fused ops and
  // inlined ALU/mem fast kinds dispatch through one dense switch, and the
  // quantum is re-checked only at the original block boundaries (so stop
  // points — and therefore virtual time — are identical to the block
  // engine's top-of-loop check).

  auto alu_eval = [&](const isa::Insn& in, GuestAddr pc) -> std::uint32_t {
    switch (in.op) {
      case Opcode::kAdd: return gpr[in.rs1] + gpr[in.rs2];
      case Opcode::kSub: return gpr[in.rs1] - gpr[in.rs2];
      case Opcode::kAnd: return gpr[in.rs1] & gpr[in.rs2];
      case Opcode::kOr: return gpr[in.rs1] | gpr[in.rs2];
      case Opcode::kXor: return gpr[in.rs1] ^ gpr[in.rs2];
      case Opcode::kSll: return gpr[in.rs1] << (gpr[in.rs2] & 31);
      case Opcode::kSrl: return gpr[in.rs1] >> (gpr[in.rs2] & 31);
      case Opcode::kSra:
        return to_unsigned(to_signed(gpr[in.rs1]) >> (gpr[in.rs2] & 31));
      case Opcode::kSlt:
        return to_signed(gpr[in.rs1]) < to_signed(gpr[in.rs2]) ? 1u : 0u;
      case Opcode::kSltu: return gpr[in.rs1] < gpr[in.rs2] ? 1u : 0u;
      case Opcode::kAddi: return gpr[in.rs1] + to_unsigned(in.imm);
      case Opcode::kAndi: return gpr[in.rs1] & to_unsigned(in.imm);
      case Opcode::kOri: return gpr[in.rs1] | to_unsigned(in.imm);
      case Opcode::kXori: return gpr[in.rs1] ^ to_unsigned(in.imm);
      case Opcode::kSlli: return gpr[in.rs1] << (in.imm & 31);
      case Opcode::kSrli: return gpr[in.rs1] >> (in.imm & 31);
      case Opcode::kSrai:
        return to_unsigned(to_signed(gpr[in.rs1]) >> (in.imm & 31));
      case Opcode::kSlti: return to_signed(gpr[in.rs1]) < in.imm ? 1u : 0u;
      case Opcode::kSltiu:
        return gpr[in.rs1] < to_unsigned(in.imm) ? 1u : 0u;
      case Opcode::kLui: return to_unsigned(in.imm) << 12;
      default: return pc + (to_unsigned(in.imm) << 12);  // kAuipc
    }
  };

  auto branch_taken = [&](const isa::Insn& in) -> bool {
    switch (in.op) {
      case Opcode::kBeq: return gpr[in.rs1] == gpr[in.rs2];
      case Opcode::kBne: return gpr[in.rs1] != gpr[in.rs2];
      case Opcode::kBlt:
        return to_signed(gpr[in.rs1]) < to_signed(gpr[in.rs2]);
      case Opcode::kBge:
        return to_signed(gpr[in.rs1]) >= to_signed(gpr[in.rs2]);
      case Opcode::kBltu: return gpr[in.rs1] < gpr[in.rs2];
      default: return gpr[in.rs1] >= gpr[in.rs2];  // kBgeu
    }
  };

  // Resolves the mem half of a trace op. A per-op TLB-line hit proves the
  // page is identity-mapped, in bounds and accessible for this op's access
  // type (mem_access verified all of that when the tag was adopted, and the
  // epoch check on trace entry drops stale tags); alignment still needs its
  // per-access check since the base register varies. On success, `host`
  // points straight at the access bytes when the page's storage could be
  // adopted, else null — `out` then holds the resolved guest address for
  // the generic AddressSpace path.
  auto sb_resolve = [&](SbOp& op, const isa::Insn& in, GuestAddr pc,
                        bool write, std::uint8_t*& host,
                        GuestAddr& out) -> bool {
    const GuestAddr vaddr = gpr[in.rs1] + to_unsigned(in.imm);
    if (op.tlb_tag == (vaddr & ~page_mask) &&
        (vaddr & (op.mem_bytes - 1u)) == 0) {
      out = vaddr;
      host = op.host_page + (vaddr & page_mask);
      return true;
    }
    if (!mem_access(vaddr, op.mem_bytes, write, pc, out)) return false;
    host = nullptr;
    if (out == vaddr) {
      const std::uint32_t page = space_.page_of(vaddr);
      // Host page storage is stable once materialized, so the line can
      // cache a raw pointer. Stores materialize the page anyway; loads
      // must not (whether a page was ever touched is protocol-observable),
      // so a load only adopts a page that already has storage.
      if (write || space_.page_materialized(page)) {
        op.tlb_tag = vaddr & ~page_mask;
        op.host_page = space_.page_data(page).data();
        host = op.host_page + (vaddr & page_mask);
      }
    }
    return true;
  };

  // Size-specialized accessors: constant sizes fold the memcpy into a
  // single move, where the generic block path pays a real memcpy call per
  // access. The *_host variants run against an adopted TLB line; the
  // guest-address variants are the fallback for unadopted pages.
  auto load_host = [&](const isa::Insn& in,
                       const std::uint8_t* host) -> std::uint32_t {
    std::uint8_t v8;
    std::uint16_t v16;
    std::uint32_t v32;
    switch (in.op) {
      case Opcode::kLb:
        std::memcpy(&v8, host, 1);
        return to_unsigned(static_cast<std::int8_t>(v8));
      case Opcode::kLbu:
        std::memcpy(&v8, host, 1);
        return v8;
      case Opcode::kLh:
        std::memcpy(&v16, host, 2);
        return to_unsigned(static_cast<std::int16_t>(v16));
      case Opcode::kLhu:
        std::memcpy(&v16, host, 2);
        return v16;
      default:
        std::memcpy(&v32, host, 4);
        return v32;
    }
  };

  auto store_host = [&](std::uint8_t* host, std::uint32_t value,
                        std::uint8_t bytes) {
    switch (bytes) {
      case 1: {
        const std::uint8_t v = static_cast<std::uint8_t>(value);
        std::memcpy(host, &v, 1);
        break;
      }
      case 2: {
        const std::uint16_t v = static_cast<std::uint16_t>(value);
        std::memcpy(host, &v, 2);
        break;
      }
      default:
        std::memcpy(host, &value, 4);
        break;
    }
  };

  auto load_value = [&](const isa::Insn& in, GuestAddr addr) -> std::uint32_t {
    switch (in.op) {
      case Opcode::kLb:
        return to_unsigned(static_cast<std::int8_t>(space_.load(addr, 1)));
      case Opcode::kLbu:
        return static_cast<std::uint8_t>(space_.load(addr, 1));
      case Opcode::kLh:
        return to_unsigned(static_cast<std::int16_t>(space_.load(addr, 2)));
      case Opcode::kLhu:
        return static_cast<std::uint16_t>(space_.load(addr, 2));
      default:
        return static_cast<std::uint32_t>(space_.load(addr, 4));
    }
  };

  auto store_sized = [&](GuestAddr addr, std::uint32_t value,
                         std::uint8_t bytes) {
    switch (bytes) {
      case 1: space_.store(addr, value, 1); break;
      case 2: space_.store(addr, value, 2); break;
      default: space_.store(addr, value, 4); break;
    }
  };

  enum class TraceOut : std::uint8_t { kExit, kReturn };

  // Returns kReturn when `result` is final (fault/quantum/syscall) and
  // kExit when execution left the trace with ctx.pc holding the off-trace
  // continuation (the block loop resumes there, re-checking the quantum at
  // its top exactly where the block engine would).
  //
  // Retirement counters accumulate in locals (registers) and flush to
  // `result`/`hot` through sync() at every exit — two memory RMWs per op
  // would dominate the dispatch this loop exists to shrink.
  auto run_trace = [&](Superblock* sb) -> TraceOut {
    SbOp* const ops = sb->ops.data();
    std::uint64_t insns = result.insns;
    std::uint64_t cycles = result.exec_cycles;
    std::uint64_t fused = 0;
    auto sync = [&] {
      result.insns = insns;
      result.exec_cycles = cycles;
      hot.fused_ops += fused;
      fused = 0;
    };
    std::uint32_t i = 0;
    for (;;) {
      SbOp& op = ops[i];
      switch (op.kind) {
        case SbOpKind::kAluFast:
          write_gpr(op.a.rd, alu_eval(op.a, op.pc));
          ++insns;
          cycles += op.cost_a;
          break;

        case SbOpKind::kMemLoad: {
          std::uint8_t* host;
          GuestAddr addr;
          if (!sb_resolve(op, op.a, op.pc, /*write=*/false, host, addr)) {
            ctx.pc = op.pc;
            sync();
            return TraceOut::kReturn;
          }
          if (op.a.op == Opcode::kFld) {
            std::uint64_t raw;
            if (host != nullptr) {
              std::memcpy(&raw, host, 8);
            } else {
              raw = space_.load(addr, 8);
            }
            double value;
            std::memcpy(&value, &raw, 8);
            fpr[op.a.rd] = value;
          } else {
            write_gpr(op.a.rd, host != nullptr ? load_host(op.a, host)
                                               : load_value(op.a, addr));
          }
          ++insns;
          cycles += op.cost_a;
          break;
        }

        case SbOpKind::kMemStore: {
          std::uint8_t* host;
          GuestAddr addr;
          if (!sb_resolve(op, op.a, op.pc, /*write=*/true, host, addr)) {
            ctx.pc = op.pc;
            sync();
            return TraceOut::kReturn;
          }
          if (op.a.op == Opcode::kFsd) {
            std::uint64_t raw;
            std::memcpy(&raw, &fpr[op.a.rs2], 8);
            if (host != nullptr) {
              std::memcpy(host, &raw, 8);
            } else {
              space_.store(addr, raw, 8);
            }
          } else if (host != nullptr) {
            store_host(host, gpr[op.a.rs2], op.mem_bytes);
          } else {
            store_sized(addr, gpr[op.a.rs2], op.mem_bytes);
          }
          snoop_store(addr);
          ++insns;
          cycles += op.cost_a;
          break;
        }

        case SbOpKind::kLoadAlu: {
          std::uint8_t* host;
          GuestAddr addr;
          if (!sb_resolve(op, op.a, op.pc, /*write=*/false, host, addr)) {
            ctx.pc = op.pc;  // the load faults first: nothing retires
            sync();
            return TraceOut::kReturn;
          }
          write_gpr(op.a.rd, host != nullptr ? load_host(op.a, host)
                                             : load_value(op.a, addr));
          write_gpr(op.b.rd, alu_eval(op.b, op.pc + 4));
          insns += 2;
          cycles += op.cost_a + op.cost_b;
          ++fused;
          break;
        }

        case SbOpKind::kAluStore: {
          write_gpr(op.a.rd, alu_eval(op.a, op.pc));
          ++insns;
          cycles += op.cost_a;  // the ALU half retires even if
          std::uint8_t* host;   // the store half faults below
          GuestAddr addr;
          if (!sb_resolve(op, op.b, op.pc + 4, /*write=*/true, host, addr)) {
            ctx.pc = op.pc + 4;
            sync();
            return TraceOut::kReturn;
          }
          if (host != nullptr) {
            store_host(host, gpr[op.b.rs2], op.mem_bytes);
          } else {
            store_sized(addr, gpr[op.b.rs2], op.mem_bytes);
          }
          snoop_store(addr);
          ++insns;
          cycles += op.cost_b;
          ++fused;
          break;
        }

        case SbOpKind::kCmpBranch: {
          write_gpr(op.a.rd, alu_eval(op.a, op.pc));
          const GuestAddr target =
              branch_taken(op.b) ? op.taken_pc : op.fall_pc;
          insns += 2;
          cycles += op.cost_a + op.cost_b;
          ++fused;
          if (target == op.on_trace_pc) {
            if (insns >= max_insns) {
              ctx.pc = target;
              result.reason = StopReason::kQuantum;
              sync();
              return TraceOut::kReturn;
            }
            i = op.next_index;
            continue;
          }
          ctx.pc = target;
          if (op.next_index != kSbExitIndex) {
            ++hot.sb_side_exit;
            ++sb->side_exits;
          }
          sync();
          return TraceOut::kExit;
        }

        case SbOpKind::kBranch: {
          const GuestAddr target =
              branch_taken(op.a) ? op.taken_pc : op.fall_pc;
          ++insns;
          cycles += op.cost_a;
          if (target == op.on_trace_pc) {
            if (insns >= max_insns) {
              ctx.pc = target;
              result.reason = StopReason::kQuantum;
              sync();
              return TraceOut::kReturn;
            }
            i = op.next_index;
            continue;
          }
          ctx.pc = target;
          if (op.next_index != kSbExitIndex) {
            ++hot.sb_side_exit;
            ++sb->side_exits;
          }
          sync();
          return TraceOut::kExit;
        }

        case SbOpKind::kJal: {
          write_gpr(op.a.rd, op.pc + 4);
          ++insns;
          cycles += op.cost_a;
          if (op.next_index != kSbExitIndex) {
            if (insns >= max_insns) {
              ctx.pc = op.taken_pc;
              result.reason = StopReason::kQuantum;
              sync();
              return TraceOut::kReturn;
            }
            i = op.next_index;
            continue;
          }
          ctx.pc = op.taken_pc;
          sync();
          return TraceOut::kExit;
        }

        case SbOpKind::kJalr: {
          const GuestAddr target =
              (gpr[op.a.rs1] + to_unsigned(op.a.imm)) & ~3u;
          write_gpr(op.a.rd, op.pc + 4);
          ++insns;
          cycles += op.cost_a;
          if (target == op.on_trace_pc) {
            if (insns >= max_insns) {
              ctx.pc = target;
              result.reason = StopReason::kQuantum;
              sync();
              return TraceOut::kReturn;
            }
            i = op.next_index;
            continue;
          }
          ctx.pc = target;
          if (op.next_index != kSbExitIndex) {
            ++hot.sb_side_exit;
            ++sb->side_exits;
          }
          sync();
          return TraceOut::kExit;
        }

        case SbOpKind::kSimple: {
          // exec_op reads/writes `result` directly (syscall accounting),
          // so the locals flush first and reload after.
          sync();
          const OpOut out = exec_op(op.a, op.pc, op.cost_a, nullptr);
          if (out == OpOut::kReturn) return TraceOut::kReturn;
          insns = result.insns + 1;
          cycles = result.exec_cycles + op.cost_a;
          break;
        }
      }

      // Straight-line advance. Cut-block boundaries are quantum guard
      // points: the block engine re-checks the budget between any two
      // blocks, so the trace must stop at exactly the same insn counts.
      if (op.boundary) {
        if (insns >= max_insns) {
          ctx.pc = op.boundary_pc;
          result.reason = StopReason::kQuantum;
          sync();
          return TraceOut::kReturn;
        }
        if (op.next_index == kSbExitIndex) {
          ctx.pc = op.boundary_pc;
          sync();
          return TraceOut::kExit;
        }
        i = op.next_index;
      } else {
        ++i;
      }
    }
  };
#endif  // DQEMU_SUPERBLOCKS_ENABLED

  TranslationBlock* tb = nullptr;
  while (true) {
    if (result.insns >= max_insns) {
      result.reason = StopReason::kQuantum;
      return result;
    }

    if (tb == nullptr) {
      tb = cache_.lookup(ctx.pc);
      if (tb == nullptr) {
        TranslateResult tr = cache_.translate(ctx.pc);
        result.translate_cycles += tr.translate_cycles;
        if (tr.code_fault) {
          result.reason = StopReason::kPageFault;
          result.fault_addr = tr.fault_addr;
          result.fault_is_write = false;
          result.fault_is_ifetch = true;
          return result;
        }
        if (tr.decode_error) {
          result.reason = StopReason::kGuestError;
          result.error =
              format_addr_error("invalid instruction fetch", tr.fault_addr,
                                ctx.pc);
          return result;
        }
        tb = tr.tb;
      }
#if DQEMU_FASTPATH_ENABLED
      if (fast) {
        // Fill the indirect-jump cache on the slow entry path so the next
        // jalr (or cold chain miss) to this pc skips the hash lookup.
        JmpCacheEntry& entry = jmp_slot(ctx.pc);
        entry.pc = ctx.pc;
        entry.tb = tb;
      }
#endif
    }

#if DQEMU_SUPERBLOCKS_ENABLED
    if (sb_on) {
      if (tb->sb == nullptr) {
        // Host-side hot counting; formation charges no virtual time.
        if (++tb->hot_count >= tb->next_hot_trigger) {
          tb->next_hot_trigger = tb->hot_count + config_.sb_hot_threshold;
          cache_.maybe_form_superblock(tb);
        }
      }
      if (Superblock* sb = tb->sb; sb != nullptr) {
        ++hot.sb_exec;
        ++sb->exec_count;
        if (sb->mem_epoch != sb_mem_epoch_) {
          for (SbOp& op : sb->ops) op.tlb_tag = kSbNoPc;
          sb->mem_epoch = sb_mem_epoch_;
        }
        if (run_trace(sb) == TraceOut::kReturn) return result;
        tb = nullptr;  // ctx.pc holds the off-trace continuation
        continue;
      }
    }
#endif

    // Execute the block.
    next_tb = nullptr;
    for (const MicroOp& mop : tb->ops) {
      const OpOut out = exec_op(mop.insn, mop.pc, mop.cost_cycles, tb);
      if (out == OpOut::kReturn) return result;
      ++result.insns;
      result.exec_cycles += mop.cost_cycles;
      if (out == OpOut::kEnd) break;
    }

    if (next_tb == nullptr && !isa::insn_info(tb->ops.back().insn.op).ends_block) {
      // Block was cut by the length/page limit: fall through.
      ctx.pc = tb->end_pc();
    }
    tb = next_tb;  // nullptr -> re-lookup / translate at top of loop
  }
}

}  // namespace dqemu::dbt
