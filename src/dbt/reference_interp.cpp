#include "dbt/reference_interp.hpp"

#include <cmath>
#include <cstring>
#include <limits>
#include <optional>

#include "isa/isa.hpp"

namespace dqemu::dbt {
namespace {

using isa::Opcode;

std::int32_t s32(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u32(std::int32_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

ReferenceResult reference_run(CpuContext& ctx, mem::AddressSpace& space,
                              std::uint64_t max_insns) {
  ReferenceResult result;
  auto& r = ctx.gpr;
  auto& f = ctx.fpr;
  // Single private LL reservation (single-threaded reference).
  // (Plain sentinel instead of optional: GCC's -Wmaybe-uninitialized
  // false-positives on optional<uint32_t> in this loop.)
  GuestAddr reservation = ~0u;
  bool has_reservation = false;

  auto fail = [&](const std::string& what) {
    result.stop = ReferenceResult::Stop::kError;
    result.error = what;
    return result;
  };

  while (result.insns < max_insns) {
    if ((ctx.pc & 3u) != 0 || !space.contains(ctx.pc)) {
      return fail("bad pc");
    }
    const auto insn = isa::decode(static_cast<std::uint32_t>(space.load(ctx.pc, 4)));
    if (!insn.has_value()) return fail("invalid opcode");
    const isa::Insn& in = *insn;
    const GuestAddr pc = ctx.pc;
    GuestAddr next = pc + 4;
    ++result.insns;

    auto wr = [&](unsigned rd, std::uint32_t v) {
      if (rd != 0) r[rd] = v;
    };
    auto mem_ok = [&](GuestAddr addr, unsigned bytes) {
      return (addr & (bytes - 1)) == 0 &&
             static_cast<std::uint64_t>(addr) + bytes <= space.size();
    };

    switch (in.op) {
      case Opcode::kAdd: wr(in.rd, r[in.rs1] + r[in.rs2]); break;
      case Opcode::kSub: wr(in.rd, r[in.rs1] - r[in.rs2]); break;
      case Opcode::kMul: wr(in.rd, r[in.rs1] * r[in.rs2]); break;
      case Opcode::kDiv: {
        const std::int32_t a = s32(r[in.rs1]);
        const std::int32_t b = s32(r[in.rs2]);
        wr(in.rd, b == 0 ? ~0u
                  : (a == std::numeric_limits<std::int32_t>::min() && b == -1)
                      ? u32(a)
                      : u32(a / b));
        break;
      }
      case Opcode::kDivu:
        wr(in.rd, r[in.rs2] == 0 ? ~0u : r[in.rs1] / r[in.rs2]);
        break;
      case Opcode::kRem: {
        const std::int32_t a = s32(r[in.rs1]);
        const std::int32_t b = s32(r[in.rs2]);
        wr(in.rd, b == 0 ? u32(a)
                  : (a == std::numeric_limits<std::int32_t>::min() && b == -1)
                      ? 0u
                      : u32(a % b));
        break;
      }
      case Opcode::kRemu:
        wr(in.rd, r[in.rs2] == 0 ? r[in.rs1] : r[in.rs1] % r[in.rs2]);
        break;
      case Opcode::kAnd: wr(in.rd, r[in.rs1] & r[in.rs2]); break;
      case Opcode::kOr: wr(in.rd, r[in.rs1] | r[in.rs2]); break;
      case Opcode::kXor: wr(in.rd, r[in.rs1] ^ r[in.rs2]); break;
      case Opcode::kSll: wr(in.rd, r[in.rs1] << (r[in.rs2] & 31)); break;
      case Opcode::kSrl: wr(in.rd, r[in.rs1] >> (r[in.rs2] & 31)); break;
      case Opcode::kSra: wr(in.rd, u32(s32(r[in.rs1]) >> (r[in.rs2] & 31))); break;
      case Opcode::kSlt: wr(in.rd, s32(r[in.rs1]) < s32(r[in.rs2]) ? 1 : 0); break;
      case Opcode::kSltu: wr(in.rd, r[in.rs1] < r[in.rs2] ? 1 : 0); break;
      case Opcode::kAddi: wr(in.rd, r[in.rs1] + u32(in.imm)); break;
      case Opcode::kAndi: wr(in.rd, r[in.rs1] & u32(in.imm)); break;
      case Opcode::kOri: wr(in.rd, r[in.rs1] | u32(in.imm)); break;
      case Opcode::kXori: wr(in.rd, r[in.rs1] ^ u32(in.imm)); break;
      case Opcode::kSlli: wr(in.rd, r[in.rs1] << (in.imm & 31)); break;
      case Opcode::kSrli: wr(in.rd, r[in.rs1] >> (in.imm & 31)); break;
      case Opcode::kSrai: wr(in.rd, u32(s32(r[in.rs1]) >> (in.imm & 31))); break;
      case Opcode::kSlti: wr(in.rd, s32(r[in.rs1]) < in.imm ? 1 : 0); break;
      case Opcode::kSltiu: wr(in.rd, r[in.rs1] < u32(in.imm) ? 1 : 0); break;
      case Opcode::kLui: wr(in.rd, u32(in.imm) << 12); break;
      case Opcode::kAuipc: wr(in.rd, pc + (u32(in.imm) << 12)); break;

      case Opcode::kLb:
      case Opcode::kLbu:
      case Opcode::kLh:
      case Opcode::kLhu:
      case Opcode::kLw:
      case Opcode::kLl: {
        const unsigned bytes = isa::insn_info(in.op).mem_bytes;
        const GuestAddr addr = r[in.rs1] + u32(in.imm);
        if (!mem_ok(addr, bytes)) return fail("bad load");
        const std::uint64_t raw = space.load(addr, bytes);
        switch (in.op) {
          case Opcode::kLb: wr(in.rd, u32(static_cast<std::int8_t>(raw))); break;
          case Opcode::kLbu: wr(in.rd, static_cast<std::uint8_t>(raw)); break;
          case Opcode::kLh: wr(in.rd, u32(static_cast<std::int16_t>(raw))); break;
          case Opcode::kLhu: wr(in.rd, static_cast<std::uint16_t>(raw)); break;
          default: wr(in.rd, static_cast<std::uint32_t>(raw)); break;
        }
        if (in.op == Opcode::kLl) {
          reservation = addr;
          has_reservation = true;
        }
        break;
      }
      case Opcode::kFld: {
        const GuestAddr addr = r[in.rs1] + u32(in.imm);
        if (!mem_ok(addr, 8)) return fail("bad fld");
        const std::uint64_t raw = space.load(addr, 8);
        std::memcpy(&f[in.rd], &raw, 8);
        break;
      }
      case Opcode::kSb:
      case Opcode::kSh:
      case Opcode::kSw: {
        const unsigned bytes = isa::insn_info(in.op).mem_bytes;
        const GuestAddr addr = r[in.rs1] + u32(in.imm);
        if (!mem_ok(addr, bytes)) return fail("bad store");
        space.store(addr, r[in.rs2], bytes);
        break;
      }
      case Opcode::kFsd: {
        const GuestAddr addr = r[in.rs1] + u32(in.imm);
        if (!mem_ok(addr, 8)) return fail("bad fsd");
        std::uint64_t raw;
        std::memcpy(&raw, &f[in.rs2], 8);
        space.store(addr, raw, 8);
        break;
      }
      case Opcode::kSc: {
        const GuestAddr addr = r[in.rs1];
        if (!mem_ok(addr, 4)) return fail("bad sc");
        if (has_reservation && reservation == addr) {
          space.store(addr, r[in.rs2], 4);
          wr(in.rd, 0);
          has_reservation = false;
        } else {
          wr(in.rd, 1);
        }
        break;
      }
      case Opcode::kBeq: if (r[in.rs1] == r[in.rs2]) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kBne: if (r[in.rs1] != r[in.rs2]) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kBlt: if (s32(r[in.rs1]) < s32(r[in.rs2])) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kBge: if (s32(r[in.rs1]) >= s32(r[in.rs2])) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kBltu: if (r[in.rs1] < r[in.rs2]) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kBgeu: if (r[in.rs1] >= r[in.rs2]) next = pc + 4 + u32(in.imm) * 4; break;
      case Opcode::kJal:
        wr(in.rd, pc + 4);
        next = pc + 4 + u32(in.imm) * 4;
        break;
      case Opcode::kJalr: {
        const GuestAddr target = (r[in.rs1] + u32(in.imm)) & ~3u;
        wr(in.rd, pc + 4);
        next = target;
        break;
      }
      case Opcode::kFence: break;
      case Opcode::kSyscall:
        ctx.pc = pc + 4;
        result.stop = ReferenceResult::Stop::kSyscall;
        result.syscall_num = in.imm;
        return result;
      case Opcode::kHint:
        ctx.hint_group = in.imm == 0xFFFF ? -1 : in.imm;
        break;

      case Opcode::kFadd: f[in.rd] = f[in.rs1] + f[in.rs2]; break;
      case Opcode::kFsub: f[in.rd] = f[in.rs1] - f[in.rs2]; break;
      case Opcode::kFmul: f[in.rd] = f[in.rs1] * f[in.rs2]; break;
      case Opcode::kFdiv: f[in.rd] = f[in.rs1] / f[in.rs2]; break;
      case Opcode::kFmin: f[in.rd] = std::fmin(f[in.rs1], f[in.rs2]); break;
      case Opcode::kFmax: f[in.rd] = std::fmax(f[in.rs1], f[in.rs2]); break;
      case Opcode::kFneg: f[in.rd] = -f[in.rs1]; break;
      case Opcode::kFabs: f[in.rd] = std::fabs(f[in.rs1]); break;
      case Opcode::kFmov: f[in.rd] = f[in.rs1]; break;
      case Opcode::kFcvtdw: f[in.rd] = static_cast<double>(s32(r[in.rs1])); break;
      case Opcode::kFcvtwd: {
        const double v = f[in.rs1];
        std::int32_t out;
        if (std::isnan(v)) out = 0;
        else if (v >= 2147483647.0) out = std::numeric_limits<std::int32_t>::max();
        else if (v <= -2147483648.0) out = std::numeric_limits<std::int32_t>::min();
        else out = static_cast<std::int32_t>(v);
        wr(in.rd, u32(out));
        break;
      }
      case Opcode::kFlt: wr(in.rd, f[in.rs1] < f[in.rs2] ? 1 : 0); break;
      case Opcode::kFle: wr(in.rd, f[in.rs1] <= f[in.rs2] ? 1 : 0); break;
      case Opcode::kFeq: wr(in.rd, f[in.rs1] == f[in.rs2] ? 1 : 0); break;
      case Opcode::kFsqrt: f[in.rd] = std::sqrt(f[in.rs1]); break;
      case Opcode::kFexp: f[in.rd] = std::exp(f[in.rs1]); break;
      case Opcode::kFlog: f[in.rd] = std::log(f[in.rs1]); break;
      case Opcode::kFpow: f[in.rd] = std::pow(f[in.rs1], f[in.rs2]); break;
      case Opcode::kFerf: f[in.rd] = std::erf(f[in.rs1]); break;
      case Opcode::kFsin: f[in.rd] = std::sin(f[in.rs1]); break;
      case Opcode::kFcos: f[in.rd] = std::cos(f[in.rs1]); break;
    }
    ctx.pc = next;
  }
  return result;
}

}  // namespace dqemu::dbt
