// Guest CPU context — the state DQEMU encapsulates in a TCG-thread.
//
// When a guest thread is created on, or migrated to, a remote node
// (paper section 4.1), this context is what travels over the wire: the
// parent's register file is cloned, the clone syscall's results are
// applied, and the remote node resumes execution from it.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>

#include "common/types.hpp"
#include "isa/isa.hpp"

namespace dqemu::dbt {

struct CpuContext {
  std::array<std::uint32_t, isa::kNumGpr> gpr{};  ///< gpr[0] stays 0
  std::array<double, isa::kNumFpr> fpr{};
  GuestAddr pc = 0;
  GuestTid tid = 0;
  /// Locality group from the last executed HINT instruction (section 5.3);
  /// inherited by children at clone time.
  std::int32_t hint_group = -1;

  [[nodiscard]] std::uint32_t a0() const { return gpr[isa::kA0]; }
  void set_a0(std::uint32_t v) { gpr[isa::kA0] = v; }
  [[nodiscard]] std::uint32_t arg(unsigned i) const {
    return gpr[isa::kA0 + i];
  }
  [[nodiscard]] std::uint32_t sp() const { return gpr[isa::kSp]; }

  /// Wire size of a serialized context (what thread migration pays for).
  static constexpr std::size_t kWireBytes =
      isa::kNumGpr * 4 + isa::kNumFpr * 8 + 4 + 4 + 4;

  /// Serializes into exactly kWireBytes at `out`.
  void serialize(std::span<std::uint8_t> out) const {
    std::size_t at = 0;
    auto put = [&](const void* p, std::size_t n) {
      std::memcpy(out.data() + at, p, n);
      at += n;
    };
    put(gpr.data(), gpr.size() * 4);
    put(fpr.data(), fpr.size() * 8);
    put(&pc, 4);
    put(&tid, 4);
    put(&hint_group, 4);
  }

  /// Inverse of serialize().
  static CpuContext deserialize(std::span<const std::uint8_t> in) {
    CpuContext ctx;
    std::size_t at = 0;
    auto get = [&](void* p, std::size_t n) {
      std::memcpy(p, in.data() + at, n);
      at += n;
    };
    get(ctx.gpr.data(), ctx.gpr.size() * 4);
    get(ctx.fpr.data(), ctx.fpr.size() * 8);
    get(&ctx.pc, 4);
    get(&ctx.tid, 4);
    get(&ctx.hint_group, 4);
    return ctx;
  }
};

}  // namespace dqemu::dbt
