#include "dbt/translation.hpp"

#include <algorithm>
#include <unordered_set>

namespace dqemu::dbt {

TranslationCache::TranslationCache(const mem::AddressSpace& space,
                                   const DbtConfig& config,
                                   bool check_protection,
                                   StatsRegistry* stats)
    : space_(space),
      config_(config),
      check_protection_(check_protection),
      stats_(stats) {}

TranslationBlock* TranslationCache::lookup(GuestAddr pc) {
  auto it = blocks_.find(pc);
  if (it == blocks_.end()) {
    if (stats_ != nullptr) stats_->add("dbt.tcache_miss");
    return nullptr;
  }
  if (stats_ != nullptr) stats_->add("dbt.tcache_hit");
  return it->second.get();
}

std::uint32_t TranslationCache::op_cost(const isa::Insn& insn) const {
  const isa::InsnInfo& info = isa::insn_info(insn.op);
  std::uint32_t cost = config_.cycles_per_op;
  if (info.is_load || info.is_store) cost += config_.cycles_per_mem_op;
  if (info.is_fp_special) cost += config_.cycles_per_fp_special;
  return cost;
}

TranslateResult TranslationCache::translate(GuestAddr pc) {
  TranslateResult result;
  if ((pc & 3u) != 0 || !space_.contains(pc)) {
    result.decode_error = true;
    result.fault_addr = pc;
    return result;
  }

  const std::uint32_t page = space_.page_of(pc);
  if (check_protection_ &&
      space_.access(page) == mem::PageAccess::kNone) {
    result.code_fault = true;
    result.fault_addr = pc;
    return result;
  }

  auto tb = std::make_unique<TranslationBlock>();
  tb->start_pc = pc;
#if DQEMU_SUPERBLOCKS_ENABLED
  tb->next_hot_trigger = config_.sb_hot_threshold;
#endif
  GuestAddr at = pc;
  // Blocks end at control transfers, at kMaxBlockInsns, or at a page
  // boundary (so a block's code always lives on one locally-present page).
  while (tb->ops.size() < kMaxBlockInsns) {
    const std::uint32_t word =
        static_cast<std::uint32_t>(space_.load(at, 4));
    const auto insn = isa::decode(word);
    if (!insn.has_value()) {
      if (tb->ops.empty()) {
        result.decode_error = true;
        result.fault_addr = at;
        return result;
      }
      break;  // let execution reach and report the bad word precisely
    }
    tb->ops.push_back(MicroOp{*insn, at, op_cost(*insn)});
    at += 4;
    if (isa::insn_info(insn->op).ends_block) break;
    if (space_.page_of(at) != page) break;
  }

  result.translate_cycles =
      std::uint64_t(config_.translate_cycles_per_insn) * tb->ops.size();
  if (stats_ != nullptr) {
    stats_->add("dbt.blocks_translated");
    stats_->add("dbt.insns_translated", tb->ops.size());
  }
  TranslationBlock* raw = tb.get();
  blocks_[pc] = std::move(tb);
  result.tb = raw;
  return result;
}

void TranslationCache::invalidate_page(std::uint32_t page) {
  std::unordered_set<const TranslationBlock*> dropped;
  for (auto it = blocks_.begin(); it != blocks_.end();) {
    if (space_.page_of(it->second->start_pc) == page) {
      dropped.insert(it->second.get());
      it = blocks_.erase(it);
    } else {
      ++it;
    }
  }
  if (!dropped.empty()) {
    // Clear only chain pointers that reference a dropped block; chains
    // between surviving blocks stay intact, so steady-state execution on
    // other pages keeps skipping the hash lookup after an invalidation.
    for (auto& [pc, tb] : blocks_) {
      if (dropped.contains(tb->next_taken)) tb->next_taken = nullptr;
      if (dropped.contains(tb->next_fall)) tb->next_fall = nullptr;
    }
#if DQEMU_SUPERBLOCKS_ENABLED
    // A superblock dies with any constituent block. Blocks never span a
    // page, so "some constituent block lives in `page`" is exactly "the
    // superblock's page set contains `page`". Surviving head blocks have
    // their trace pointer cleared (mirrors the chain-pointer clearing);
    // execution falls back to block mode and may re-form later.
    std::uint64_t sb_dropped = 0;
    for (auto it = superblocks_.begin(); it != superblocks_.end();) {
      Superblock& sb = *it->second;
      if (std::find(sb.pages.begin(), sb.pages.end(), page) !=
          sb.pages.end()) {
        if (sb_event_hook_) sb_event_hook_(SbEvent::kInvalidated, sb);
        const auto head = blocks_.find(sb.entry_pc);
        if (head != blocks_.end()) head->second->sb = nullptr;
        it = superblocks_.erase(it);
        ++sb_dropped;
      } else {
        ++it;
      }
    }
    if (sb_dropped != 0 && stats_ != nullptr) {
      stats_->add("dbt.sb_invalidated", sb_dropped);
    }
#endif
    ++generation_;
    if (stats_ != nullptr) stats_->add("dbt.tcache_page_invalidations");
  }
}

void TranslationCache::flush() {
#if DQEMU_SUPERBLOCKS_ENABLED
  if (sb_event_hook_) {
    for (const auto& [pc, sb] : superblocks_) {
      sb_event_hook_(SbEvent::kInvalidated, *sb);
    }
  }
  if (!superblocks_.empty() && stats_ != nullptr) {
    stats_->add("dbt.sb_invalidated", superblocks_.size());
  }
  superblocks_.clear();  // heads die with blocks_ below
#endif
  blocks_.clear();
  ++generation_;
}

bool TranslationCache::contains_block(const TranslationBlock* tb) const {
  for (const auto& [pc, block] : blocks_) {
    if (block.get() == tb) return true;
  }
  return false;
}

bool TranslationCache::contains_superblock(const Superblock* sb) const {
#if DQEMU_SUPERBLOCKS_ENABLED
  for (const auto& [pc, owned] : superblocks_) {
    if (owned.get() == sb) return true;
  }
#else
  (void)sb;
#endif
  return false;
}

std::size_t TranslationCache::superblock_count() const {
#if DQEMU_SUPERBLOCKS_ENABLED
  return superblocks_.size();
#else
  return 0;
#endif
}

const Superblock* TranslationCache::superblock_at(GuestAddr entry_pc) const {
#if DQEMU_SUPERBLOCKS_ENABLED
  const auto it = superblocks_.find(entry_pc);
  return it != superblocks_.end() ? it->second.get() : nullptr;
#else
  (void)entry_pc;
  return nullptr;
#endif
}

std::vector<HotBlockInfo> TranslationCache::hot_census() const {
  std::vector<HotBlockInfo> rows;
#if DQEMU_SUPERBLOCKS_ENABLED
  rows.reserve(blocks_.size());
  for (const auto& [pc, tb] : blocks_) {
    rows.push_back(HotBlockInfo{pc, tb->insn_count(), tb->hot_count,
                                tb->sb != nullptr});
  }
#endif
  return rows;
}

std::vector<SuperblockInfo> TranslationCache::superblock_census() const {
  std::vector<SuperblockInfo> rows;
#if DQEMU_SUPERBLOCKS_ENABLED
  rows.reserve(superblocks_.size());
  for (const auto& [pc, sb] : superblocks_) {
    rows.push_back(SuperblockInfo{
        sb->entry_pc, static_cast<std::uint32_t>(sb->block_pcs.size()),
        sb->guest_insns, sb->fused_pairs, sb->loops, sb->exec_count,
        sb->side_exits});
  }
#endif
  return rows;
}

void TranslationCache::set_sb_event_hook(
    std::function<void(SbEvent, const Superblock&)> hook) {
#if DQEMU_SUPERBLOCKS_ENABLED
  sb_event_hook_ = std::move(hook);
#else
  (void)hook;
#endif
}

}  // namespace dqemu::dbt
