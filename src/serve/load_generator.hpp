// Virtual-time load generator for the serving plane (DESIGN.md §14).
//
// Lives on the master beside the syscall engine. Guest worker threads
// (workloads::serve_pool) pull work with the kServeGet syscall: the
// generator either hands out a pending request immediately or parks the
// worker in a FIFO — exactly the deferred-response mechanism FUTEX_WAIT
// uses — and completes it with kServeDone. Request arrivals are events on
// the shared EventQueue; every random draw (inter-arrival gap, service
// class, work jitter, think time) is a counter-based SplitMix64 value
// keyed by (seed, counter), so a run's entire request schedule is a pure
// function of the config. Latencies (arrival -> first reply) land in the
// stats registry's log-bucketed histograms; each request carries a trace
// flow id from arrival to completion.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "serve/serve.hpp"
#include "sim/event_queue.hpp"
#include "trace/tracer.hpp"

namespace dqemu::serve {

class LoadGenerator {
 public:
  /// Sends the kSyscallResp that unblocks (node, tid) with `result` in a0.
  /// The core layer binds this to MasterSyscalls::send_response, so every
  /// dispatch pays the same manager service delay as any other response.
  using Responder = std::function<void(NodeId dst, GuestTid tid,
                                       std::int64_t result,
                                       std::uint64_t flow)>;

  /// kServeGet result for "all requests issued, pool may exit".
  static constexpr std::int64_t kNoMoreWork = -1;
  /// Work-descriptor encoding: class in the top nibble's lower bits, work
  /// units below (positive in 32-bit, so the guest tests sign for EOF).
  static constexpr std::uint32_t kClassShift = 28;
  static constexpr std::uint32_t kWorkMask = (1u << kClassShift) - 1;

  /// Guest-side checksum contract: every service kernel accumulates
  /// i = 1..work in 32-bit wrap-around, so the master can verify replies.
  [[nodiscard]] static constexpr std::uint32_t expected_checksum(
      std::uint32_t work) {
    return static_cast<std::uint32_t>(
        (static_cast<std::uint64_t>(work) * (work + 1ULL)) / 2);
  }

  LoadGenerator(sim::EventQueue& queue, const ServeConfig& config,
                StatsRegistry* stats, trace::Tracer* tracer,
                Responder responder);

  /// Schedules the first arrivals (open loop) or the first client issues
  /// (closed loop). Call once, after the cluster is wired.
  void start();

  /// A worker asked for work (delegated kServeGet reached the master).
  void on_get_request(NodeId src, GuestTid tid, std::uint64_t flow);

  /// A worker finished its assigned execution (kServeDone), reporting the
  /// service kernel's checksum.
  void on_done(NodeId src, GuestTid tid, std::uint32_t checksum,
               std::uint64_t flow);

  /// Whole-node fault plane (DESIGN.md §18): node `dead` crashed and its
  /// workers were re-homed to `replacement`. `serveget_tids` (sorted) are
  /// the captured threads that died inside a kServeGet — their checked-out
  /// executions (descriptor response lost with the node) go back on the
  /// pending queue and their stale parked entries are dropped; every other
  /// execution running on the dead node is re-keyed to the replacement,
  /// whose re-issued kServeDone then retires it. Makes on_done tolerant of
  /// the at-least-once duplicate a re-issued kServeDone can produce.
  void on_node_crash(NodeId dead, NodeId replacement,
                     std::span<const GuestTid> serveget_tids);

  // ---- introspection (tests / benches) ----------------------------------
  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  /// Requests retired by their first reply.
  [[nodiscard]] std::uint64_t retired() const { return retired_; }
  /// Executions dispatched (requests x clones when fully drained).
  [[nodiscard]] std::uint64_t dispatched() const { return dispatched_; }
  /// Arrival time of every issued request, in issue order.
  [[nodiscard]] const std::vector<TimePs>& arrival_times() const {
    return arrivals_;
  }
  /// Latency of every retired request, in retirement order.
  [[nodiscard]] const std::vector<DurationPs>& latencies() const {
    return latencies_;
  }

  /// FNV-1a fingerprint of the serving plane's queues and tallies
  /// (checkpoint component, DESIGN.md §18).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Request {
    TimePs arrival = 0;
    std::uint32_t cls = 0;       ///< 0 cheap / 1 medium / 2 heavy
    std::uint32_t work = 0;      ///< jittered work units
    std::uint32_t client = 0;    ///< closed-loop issuer
    std::uint32_t outstanding = 0;  ///< clone executions not yet replied
    bool retired = false;
    std::uint64_t flow = 0;      ///< trace causal chain arrival->completion
  };
  struct Parked {
    NodeId node = kInvalidNode;
    GuestTid tid = kInvalidTid;
    std::uint64_t flow = 0;
  };

  // Draw salts: distinct deterministic streams off the one seed.
  static constexpr std::uint64_t kSaltArrival = 1;
  static constexpr std::uint64_t kSaltClass = 2;
  static constexpr std::uint64_t kSaltWork = 3;
  static constexpr std::uint64_t kSaltThink = 4;

  [[nodiscard]] std::uint64_t draw(std::uint64_t counter,
                                   std::uint64_t salt) const;
  /// Uniform double in [0, 1) from the (counter, salt) stream.
  [[nodiscard]] double draw_unit(std::uint64_t counter,
                                 std::uint64_t salt) const;
  /// Exponential with the given mean, from the (counter, salt) stream.
  [[nodiscard]] DurationPs draw_exponential(std::uint64_t counter,
                                            std::uint64_t salt,
                                            double mean_ps) const;
  [[nodiscard]] bool done_issuing() const {
    return issued_ >= config_.requests;
  }

  void schedule_open_arrival(std::uint64_t n);
  /// Creates request `issued_`, enqueues its clone executions, dispatches
  /// to parked workers.
  void issue_request(std::uint32_t client);
  /// Closed loop: arm the client's next issue after a think-time draw.
  void schedule_client_issue(std::uint32_t client);
  void dispatch(std::uint32_t request_id, const Parked& worker);
  /// Once the last request is issued and the execution queue is empty, any
  /// parked worker can only be waiting forever — release it with EOF.
  void release_parked_if_drained();
  void note(const char* name, trace::Kind kind, std::uint64_t flow,
            std::uint64_t a, std::uint64_t b);

  sim::EventQueue& queue_;
  ServeConfig config_;
  StatsRegistry* stats_;
  trace::Tracer* tracer_;
  Responder responder_;

  std::vector<Request> requests_;   ///< indexed by request id
  std::deque<std::uint32_t> pending_;  ///< undispatched executions (req ids)
  std::deque<Parked> parked_;
  /// (node << 32 | tid) -> request id of the execution in flight there.
  std::unordered_map<std::uint64_t, std::uint32_t> running_;
  std::vector<TimePs> arrivals_;
  std::vector<DurationPs> latencies_;
  std::uint64_t issued_ = 0;
  std::uint64_t retired_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t think_draws_ = 0;
  /// Set once a crash was recovered: an unknown kServeDone is then an
  /// at-least-once duplicate (acknowledged silently), not a guest bug.
  bool crash_tolerant_ = false;
};

}  // namespace dqemu::serve
