// Compile-time gate for the request-serving plane (DESIGN.md §14).
//
// Mirrors the other dual-gated subsystems (DBT fast paths, hierarchical
// locking, DSM diffs, fault injection): the DQEMU_ENABLE_SERVING CMake
// option defines DQEMU_SERVING_ENABLED=0 to compile the load generator out,
// and ServeConfig::enabled gates it at runtime. With either gate off, a
// batch run is bit-identical to a build that never had the subsystem.
#pragma once

#ifndef DQEMU_SERVING_ENABLED
#define DQEMU_SERVING_ENABLED 1
#endif

namespace dqemu::serve {

[[nodiscard]] constexpr bool compiled_in() {
  return DQEMU_SERVING_ENABLED != 0;
}

}  // namespace dqemu::serve
