#include "serve/load_generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"
#include "isa/syscall_abi.hpp"

namespace dqemu::serve {

#if DQEMU_SERVING_ENABLED
namespace {

[[nodiscard]] std::uint64_t worker_key(NodeId node, GuestTid tid) {
  return (static_cast<std::uint64_t>(node) << 32) | tid;
}

}  // namespace
#endif

LoadGenerator::LoadGenerator(sim::EventQueue& queue, const ServeConfig& config,
                             StatsRegistry* stats, trace::Tracer* tracer,
                             Responder responder)
    : queue_(queue),
      config_(config),
      stats_(stats),
      tracer_(tracer),
      responder_(std::move(responder)) {}

#if DQEMU_SERVING_ENABLED

std::uint64_t LoadGenerator::draw(std::uint64_t counter,
                                  std::uint64_t salt) const {
  // Counter-based stream (same recipe as the fault injector): the value
  // depends only on (seed, salt, counter), never on call order.
  std::uint64_t state = config_.seed ^ (salt * 0xA24BAED4963EE407ULL) ^
                        (counter * 0x9FB21C651E98DF25ULL);
  return splitmix64(state);
}

double LoadGenerator::draw_unit(std::uint64_t counter,
                                std::uint64_t salt) const {
  return static_cast<double>(draw(counter, salt) >> 11) * 0x1.0p-53;
}

DurationPs LoadGenerator::draw_exponential(std::uint64_t counter,
                                           std::uint64_t salt,
                                           double mean_ps) const {
  // Inverse-CDF with u < 1 strictly, so the log is finite.
  const double u = draw_unit(counter, salt);
  return static_cast<DurationPs>(-std::log1p(-u) * mean_ps);
}

void LoadGenerator::start() {
  if (!config_.enabled || config_.requests == 0) return;
  if (config_.arrival == ArrivalProcess::kClosed) {
    // Every client's first issue is staggered by its own think draw, so a
    // client population never arrives as one thundering herd.
    for (std::uint32_t c = 0; c < config_.clients; ++c) {
      schedule_client_issue(c);
    }
  } else {
    schedule_open_arrival(0);
  }
}

void LoadGenerator::schedule_open_arrival(std::uint64_t n) {
  DurationPs gap = 0;
  if (config_.arrival == ArrivalProcess::kUniform) {
    gap = static_cast<DurationPs>(1e12 / config_.rate + 0.5);
  } else {
    gap = draw_exponential(n, kSaltArrival, 1e12 / config_.rate);
  }
  queue_.schedule_in(gap, [this] {
    issue_request(0);
    if (!done_issuing()) schedule_open_arrival(issued_);
  });
}

void LoadGenerator::schedule_client_issue(std::uint32_t client) {
  const DurationPs think = draw_exponential(
      think_draws_++, kSaltThink, static_cast<double>(config_.think_mean));
  queue_.schedule_in(think, [this, client] {
    // The issue target may have been reached while this think ran.
    if (done_issuing()) {
      release_parked_if_drained();
      return;
    }
    issue_request(client);
  });
}

void LoadGenerator::issue_request(std::uint32_t client) {
  assert(!done_issuing());
  const auto id = static_cast<std::uint32_t>(issued_);
  Request req;
  req.arrival = queue_.now();
  req.client = client;
  req.outstanding = config_.clones;

  // Service class + work units: keyed by the request number alone, so the
  // mix is identical across arrival processes and independent of timing.
  const std::uint64_t mix_total =
      config_.mix_cheap + config_.mix_medium + config_.mix_heavy;
  const std::uint64_t r = draw(id, kSaltClass) % mix_total;
  req.cls = r < config_.mix_cheap
                ? 0u
                : (r < config_.mix_cheap + config_.mix_medium ? 1u : 2u);
  const std::uint32_t base = req.cls == 0   ? config_.work_cheap
                             : req.cls == 1 ? config_.work_medium
                                            : config_.work_heavy;
  // Jitter in [base/2, 3*base/2): a mix of sizes inside each class.
  std::uint32_t work =
      base / 2 + static_cast<std::uint32_t>(draw(id, kSaltWork) % base);
  if (work == 0) work = 1;
  req.work = work & kWorkMask;

  if (trace::wants(tracer_, trace::Cat::kServe)) {
    req.flow = tracer_->new_flow();
  }
  note("serve.request", trace::Kind::kFlowBegin, req.flow, id, req.cls);

  requests_.push_back(req);
  arrivals_.push_back(req.arrival);
  ++issued_;
  if (stats_ != nullptr) stats_->add("serve.requests");

  for (std::uint32_t c = 0; c < config_.clones; ++c) {
    if (!parked_.empty()) {
      const Parked worker = parked_.front();
      parked_.pop_front();
      dispatch(id, worker);
    } else {
      pending_.push_back(id);
    }
  }
  // The last issue is the only transition of done_issuing(): any worker
  // still parked here could otherwise wait forever.
  release_parked_if_drained();
}

void LoadGenerator::dispatch(std::uint32_t request_id, const Parked& worker) {
  Request& req = requests_[request_id];
  running_[worker_key(worker.node, worker.tid)] = request_id;
  ++dispatched_;
  if (stats_ != nullptr) {
    stats_->add("serve.executions");
    stats_->histogram("serve.queue_ns")
        .record((queue_.now() - req.arrival) / time_literals::kNs);
  }
  note("serve.dispatch", trace::Kind::kFlowStep, req.flow, request_id,
       worker.node);
  const std::uint32_t desc = (req.cls << kClassShift) | req.work;
  responder_(worker.node, worker.tid, static_cast<std::int64_t>(desc),
             worker.flow);
}

void LoadGenerator::on_get_request(NodeId src, GuestTid tid,
                                   std::uint64_t flow) {
  if (!pending_.empty()) {
    const std::uint32_t id = pending_.front();
    pending_.pop_front();
    dispatch(id, Parked{src, tid, flow});
    return;
  }
  if (done_issuing()) {
    if (stats_ != nullptr) stats_->add("serve.stop_signals");
    responder_(src, tid, kNoMoreWork, flow);
    return;
  }
  parked_.push_back(Parked{src, tid, flow});
  if (stats_ != nullptr) stats_->add("serve.parks");
}

void LoadGenerator::on_done(NodeId src, GuestTid tid, std::uint32_t checksum,
                            std::uint64_t flow) {
  const auto it = running_.find(worker_key(src, tid));
  if (it == running_.end()) {
    if (crash_tolerant_) {
      // At-least-once duplicate: the original kServeDone was processed but
      // its response died with the worker's old node, so the re-homed
      // thread re-issued the call. Acknowledge and move on.
      if (stats_ != nullptr) stats_->add("serve.dup_done_dropped");
      responder_(src, tid, 0, flow);
      return;
    }
    // kServeDone without an assigned execution: a guest bug.
    responder_(src, tid, -isa::kEINVAL, flow);
    return;
  }
  const std::uint32_t id = it->second;
  running_.erase(it);
  Request& req = requests_[id];
  assert(req.outstanding > 0);
  --req.outstanding;

  if (checksum != expected_checksum(req.work) && stats_ != nullptr) {
    stats_->add("serve.checksum_errors");
  }

  if (!req.retired) {
    // First reply wins: this execution's completion is the request's.
    req.retired = true;
    ++retired_;
    const DurationPs latency = queue_.now() - req.arrival;
    latencies_.push_back(latency);
    if (stats_ != nullptr) {
      stats_->add("serve.retired");
      stats_->histogram("serve.latency_ns")
          .record(latency / time_literals::kNs);
      if (config_.clones > 1) stats_->add("serve.clone_wins");
    }
    note("serve.complete", trace::Kind::kFlowEnd, req.flow, id,
         latency / time_literals::kNs);
    if (config_.arrival == ArrivalProcess::kClosed) {
      schedule_client_issue(req.client);
    }
  } else if (stats_ != nullptr) {
    // A clone that lost the race; its work was redundant by design.
    stats_->add("serve.clone_wasted");
  }

  responder_(src, tid, 0, flow);
}

void LoadGenerator::on_node_crash(NodeId dead, NodeId replacement,
                                  std::span<const GuestTid> serveget_tids) {
  crash_tolerant_ = true;

  // Workers that died inside kServeGet: if an execution was checked out to
  // them, its descriptor response is gone — requeue it (the re-issued
  // kServeGet picks up fresh work, possibly this very request).
  for (const GuestTid tid : serveget_tids) {
    const auto it = running_.find(worker_key(dead, tid));
    if (it == running_.end()) continue;  // was parked, or never dispatched
    pending_.push_back(it->second);
    running_.erase(it);
    if (stats_ != nullptr) stats_->add("serve.requeued_executions");
  }

  // Every other execution on the dead node is mid-work on a re-homed
  // thread: re-key it so the kServeDone arriving from the replacement node
  // finds it. Keys are collected and sorted first (tids are cluster-unique,
  // so the new keys cannot collide) to keep map mutation order seeded only
  // by guest state, not by hash iteration.
  std::vector<std::uint64_t> stale;
  for (const auto& [key, id] : running_) {
    if ((key >> 32) == dead) stale.push_back(key);
  }
  std::sort(stale.begin(), stale.end());
  for (const std::uint64_t key : stale) {
    const std::uint32_t id = running_.at(key);
    running_.erase(key);
    running_[worker_key(replacement, static_cast<GuestTid>(key))] = id;
    if (stats_ != nullptr) stats_->add("serve.rekeyed_executions");
  }

  // Parked entries pointing at the dead node would dispatch work into the
  // void; the re-homed workers re-park from their new node.
  std::erase_if(parked_, [&](const Parked& p) { return p.node == dead; });
}

std::uint64_t LoadGenerator::digest() const {
  // Same FNV-1a recipe as core/checkpoint.hpp, restated locally so the
  // serving layer does not depend upward on core.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto fold = [&h](std::uint64_t v) {
    for (unsigned i = 0; i < 8; ++i) {
      h = (h ^ ((v >> (8 * i)) & 0xFF)) * 0x00000100000001B3ULL;
    }
  };
  fold(issued_);
  fold(retired_);
  fold(dispatched_);
  for (const std::uint32_t id : pending_) fold(id);
  for (const Parked& p : parked_) {
    fold(p.node);
    fold(p.tid);
  }
  std::vector<std::uint64_t> keys;
  keys.reserve(running_.size());
  for (const auto& [key, id] : running_) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::uint64_t key : keys) {
    fold(key);
    fold(running_.at(key));
  }
  for (const DurationPs latency : latencies_) fold(latency);
  return h;
}

void LoadGenerator::release_parked_if_drained() {
  if (!done_issuing() || !pending_.empty()) return;
  while (!parked_.empty()) {
    const Parked worker = parked_.front();
    parked_.pop_front();
    if (stats_ != nullptr) stats_->add("serve.stop_signals");
    responder_(worker.node, worker.tid, kNoMoreWork, worker.flow);
  }
}

void LoadGenerator::note(const char* name, trace::Kind kind,
                         std::uint64_t flow, std::uint64_t a,
                         std::uint64_t b) {
  if (!trace::wants(tracer_, trace::Cat::kServe)) return;
  trace::Record r;
  r.time = queue_.now();
  r.name = name;
  r.flow = flow;
  r.a = a;
  r.b = b;
  r.node = kMasterNode;
  r.track = trace::kTrackManager;
  r.kind = kind;
  r.cat = trace::Cat::kServe;
  tracer_->record(r);
}

#else  // DQEMU_SERVING_ENABLED

// Compiled-out stubs: the core layer refuses to construct a serving
// cluster in this build (Cluster reports a fatal config error), so none of
// these can be reached; they only keep the library linkable.
std::uint64_t LoadGenerator::draw(std::uint64_t, std::uint64_t) const {
  return 0;
}
double LoadGenerator::draw_unit(std::uint64_t, std::uint64_t) const {
  return 0.0;
}
DurationPs LoadGenerator::draw_exponential(std::uint64_t, std::uint64_t,
                                           double) const {
  return 0;
}
void LoadGenerator::start() {}
void LoadGenerator::schedule_open_arrival(std::uint64_t) {}
void LoadGenerator::schedule_client_issue(std::uint32_t) {}
void LoadGenerator::issue_request(std::uint32_t) {}
void LoadGenerator::dispatch(std::uint32_t, const Parked&) {}
void LoadGenerator::on_get_request(NodeId, GuestTid, std::uint64_t) {}
void LoadGenerator::on_done(NodeId, GuestTid, std::uint32_t, std::uint64_t) {}
void LoadGenerator::on_node_crash(NodeId, NodeId, std::span<const GuestTid>) {}
std::uint64_t LoadGenerator::digest() const { return 0; }
void LoadGenerator::release_parked_if_drained() {}
void LoadGenerator::note(const char*, trace::Kind, std::uint64_t,
                         std::uint64_t, std::uint64_t) {}

#endif  // DQEMU_SERVING_ENABLED

}  // namespace dqemu::serve
