// Trace record vocabulary for the flight recorder (DESIGN.md §9).
//
// A Record is a fixed-size POD stamped with virtual time plus the
// (node, track, guest thread) coordinates needed to place it on a
// timeline. Names are pointers to strings that outlive the Tracer —
// string literals at instrumentation sites, or strings interned into the
// Tracer (counter names). Everything recorded is a pure observation of
// simulator state, so traces of a deterministic run are themselves
// deterministic: two runs with the same config and seed produce
// byte-identical exports.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace dqemu::trace {

/// Category bitmask used for filtering at the instrumentation site.
enum class Cat : std::uint32_t {
  kSim = 1u << 0,      ///< simulated-core time slices (execution quanta)
  kCore = 1u << 1,     ///< thread lifecycle: create / migrate / exit
  kNet = 1u << 2,      ///< interconnect message send / deliver edges
  kDsm = 1u << 3,      ///< coherence protocol: faults, grants, splits
  kSys = 1u << 4,      ///< syscall delegation and the distributed futex
  kCounter = 1u << 5,  ///< periodic counter snapshots (stats timelines)
  kQueue = 1u << 6,    ///< raw event-queue dispatch (very voluminous)
  kServe = 1u << 7,    ///< serving plane: request arrival/dispatch/complete
  kDbt = 1u << 8,      ///< DBT internals: superblock formation/invalidation
};

[[nodiscard]] constexpr std::uint32_t cat_bit(Cat c) {
  return static_cast<std::uint32_t>(c);
}

/// Default-enabled categories: everything except the raw event-queue
/// firehose (one instant per simulation event) and DBT internals, whose
/// records depend on host-side trace formation — keeping them out of the
/// default set keeps default exports byte-identical with superblocks on
/// or off.
inline constexpr std::uint32_t kDefaultCategories =
    cat_bit(Cat::kSim) | cat_bit(Cat::kCore) | cat_bit(Cat::kNet) |
    cat_bit(Cat::kDsm) | cat_bit(Cat::kSys) | cat_bit(Cat::kCounter) |
    cat_bit(Cat::kServe);

inline constexpr std::uint32_t kAllCategories =
    kDefaultCategories | cat_bit(Cat::kQueue) | cat_bit(Cat::kDbt);

/// Short name of a category (for exports and --trace-categories).
[[nodiscard]] constexpr const char* cat_name(Cat c) {
  switch (c) {
    case Cat::kSim: return "sim";
    case Cat::kCore: return "core";
    case Cat::kNet: return "net";
    case Cat::kDsm: return "dsm";
    case Cat::kSys: return "sys";
    case Cat::kCounter: return "counter";
    case Cat::kQueue: return "queue";
    case Cat::kServe: return "serve";
    case Cat::kDbt: return "dbt";
  }
  return "?";
}

/// Set on flow ids the network opened itself (the message reached send()
/// unchained). Receivers use it to tell "this flow is just the wire hop"
/// from "this flow is a higher-layer transaction I should continue".
inline constexpr std::uint64_t kAutoFlowBit = 1ULL << 63;

enum class Kind : std::uint8_t {
  kSpanBegin,  ///< synchronous span open on (node, track); must nest
  kSpanEnd,    ///< matching close
  kInstant,    ///< point event on (node, track)
  kCounter,    ///< sample of counter `name` with value `a`
  kFlowBegin,  ///< causal chain `flow` opens (async span begin)
  kFlowStep,   ///< an edge in chain `flow` (send / deliver / service)
  kFlowEnd,    ///< causal chain `flow` closes
};

// Track ids inside a node's "process". Every simulated core gets its own
// track so slices render one lane per core, like a CPU-scheduling trace.
inline constexpr std::uint16_t kTrackNode = 0;     ///< node-level events
inline constexpr std::uint16_t kTrackNic = 1;      ///< NIC / wire activity
inline constexpr std::uint16_t kTrackManager = 2;  ///< syscall engine
inline constexpr std::uint16_t kTrackCoreBase = 8; ///< + CoreId
/// Master-side per-slave manager threads (paper Fig. 2): + destination
/// NodeId. Placed high so core tracks never collide.
inline constexpr std::uint16_t kTrackManagerBase = 64;

struct Record {
  TimePs time = 0;
  const char* name = nullptr;  ///< static literal or Tracer-interned
  std::uint64_t flow = 0;      ///< causal id; 0 = not part of a chain
  std::uint64_t a = 0;         ///< arg: page / bytes / counter value / ...
  std::uint64_t b = 0;         ///< arg: msg type / access / stop reason / ...
  GuestTid tid = 0;            ///< guest thread; 0 = none
  NodeId node = 0;
  std::uint16_t track = kTrackNode;
  Kind kind = Kind::kInstant;
  Cat cat = Cat::kSim;
};

}  // namespace dqemu::trace
