#include "trace/tracer.hpp"

#include <algorithm>

namespace dqemu::trace {

Tracer::Tracer(TraceConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  ring_.reserve(std::min<std::size_t>(config_.capacity, 1u << 16));
}

void Tracer::record(const Record& r) {
  if (count_ < config_.capacity) {
    if (next_ >= ring_.size()) {
      ring_.push_back(r);
    } else {
      ring_[next_] = r;
    }
    ++count_;
  } else {
    ring_[next_] = r;
    ++dropped_;
  }
  next_ = (next_ + 1) % config_.capacity;
}

const char* Tracer::intern(std::string_view name) {
  auto it = intern_index_.find(name);
  if (it != intern_index_.end()) return it->second;
  interned_.emplace_back(name);
  const char* stable = interned_.back().c_str();
  intern_index_.emplace(interned_.back(), stable);
  return stable;
}

std::vector<Record> Tracer::records() const {
  std::vector<Record> out;
  out.reserve(count_);
  // Oldest record: when the ring has wrapped, it sits at next_; before
  // that, at slot 0.
  const std::size_t start = (count_ == config_.capacity) ? next_ : 0;
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(start + i) % config_.capacity]);
  }
  // Instrumentation may stamp records with scheduled (future) virtual
  // times — e.g. a manager-occupancy span is emitted when the message is
  // accepted but ends at its service-completion time. A stable sort keeps
  // exports chronological while preserving record order at equal times,
  // so identical runs still produce identical traces.
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return a.time < b.time;
                   });
  return out;
}

void Tracer::clear() {
  next_ = 0;
  count_ = 0;
  dropped_ = 0;
}

std::optional<std::uint32_t> parse_categories(std::string_view list) {
  std::uint32_t mask = 0;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    list = (comma == std::string_view::npos) ? std::string_view{}
                                             : list.substr(comma + 1);
    if (item.empty()) continue;
    if (item == "all") {
      mask |= kAllCategories;
      continue;
    }
    if (item == "default") {
      mask |= kDefaultCategories;
      continue;
    }
    bool found = false;
    for (const Cat c :
         {Cat::kSim, Cat::kCore, Cat::kNet, Cat::kDsm, Cat::kSys,
          Cat::kCounter, Cat::kQueue, Cat::kServe, Cat::kDbt}) {
      if (item == cat_name(c)) {
        mask |= cat_bit(c);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return mask;
}

}  // namespace dqemu::trace
