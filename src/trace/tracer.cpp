#include "trace/tracer.hpp"

#include <algorithm>
#include <cassert>

namespace dqemu::trace {

thread_local Tracer* Tracer::bound_owner_ = nullptr;
thread_local Tracer::Sink* Tracer::bound_sink_ = nullptr;
thread_local std::uint64_t Tracer::bound_index_ = 0;

Tracer::Tracer(TraceConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  main_.ring.reserve(std::min<std::size_t>(config_.capacity, 1u << 16));
}

void Tracer::append(Sink& sink, const Record& r) {
  if (sink.count < config_.capacity) {
    if (sink.next >= sink.ring.size()) {
      sink.ring.push_back(r);
    } else {
      sink.ring[sink.next] = r;
    }
    ++sink.count;
  } else {
    sink.ring[sink.next] = r;
    ++sink.dropped;
  }
  sink.next = (sink.next + 1) % config_.capacity;
}

void Tracer::record(const Record& r) {
  append(bound_owner_ == this ? *bound_sink_ : main_, r);
}

std::uint64_t Tracer::new_flow() {
  if (bound_owner_ == this) {
    // Shard-local namespace: disjoint from main_'s low ids and from every
    // other shard, and clear of kAutoFlowBit (bit 63) so the network's
    // auto-flow tagging still works on shard-allocated chains.
    return ((bound_index_ + 1) << 40) | bound_sink_->next_flow++;
  }
  return main_.next_flow++;
}

void Tracer::configure_shards(std::size_t count) {
  assert(shards_.empty() && "shards already configured");
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Sink>());
  }
}

void Tracer::bind_shard(std::size_t index) {
  assert(index < shards_.size());
  bound_owner_ = this;
  bound_sink_ = shards_[index].get();
  bound_index_ = index;
}

void Tracer::unbind_shard() {
  bound_owner_ = nullptr;
  bound_sink_ = nullptr;
  bound_index_ = 0;
}

const char* Tracer::intern(std::string_view name) {
  assert(bound_owner_ != this && "intern is not shard-safe; barrier only");
  auto it = intern_index_.find(name);
  if (it != intern_index_.end()) return it->second;
  interned_.emplace_back(name);
  const char* stable = interned_.back().c_str();
  intern_index_.emplace(interned_.back(), stable);
  return stable;
}

std::vector<Record> Tracer::records() const {
  std::vector<Record> out;
  out.reserve(size());
  const auto drain = [&](const Sink& sink) {
    // Oldest record: when the ring has wrapped, it sits at next; before
    // that, at slot 0.
    const std::size_t start = (sink.count == config_.capacity) ? sink.next : 0;
    for (std::size_t i = 0; i < sink.count; ++i) {
      out.push_back(sink.ring[(start + i) % config_.capacity]);
    }
  };
  drain(main_);
  for (const auto& shard : shards_) drain(*shard);
  // Instrumentation may stamp records with scheduled (future) virtual
  // times — e.g. a manager-occupancy span is emitted when the message is
  // accepted but ends at its service-completion time. A stable sort keeps
  // exports chronological while preserving record order at equal times,
  // so identical runs still produce identical traces.
  std::stable_sort(out.begin(), out.end(),
                   [](const Record& a, const Record& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::size_t Tracer::size() const {
  std::size_t total = main_.count;
  for (const auto& shard : shards_) total += shard->count;
  return total;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = main_.dropped;
  for (const auto& shard : shards_) total += shard->dropped;
  return total;
}

void Tracer::clear() {
  const auto reset = [](Sink& sink) {
    sink.next = 0;
    sink.count = 0;
    sink.dropped = 0;
  };
  reset(main_);
  for (const auto& shard : shards_) reset(*shard);
}

std::optional<std::uint32_t> parse_categories(std::string_view list) {
  std::uint32_t mask = 0;
  while (!list.empty()) {
    const std::size_t comma = list.find(',');
    std::string_view item = list.substr(0, comma);
    list = (comma == std::string_view::npos) ? std::string_view{}
                                             : list.substr(comma + 1);
    if (item.empty()) continue;
    if (item == "all") {
      mask |= kAllCategories;
      continue;
    }
    if (item == "default") {
      mask |= kDefaultCategories;
      continue;
    }
    bool found = false;
    for (const Cat c :
         {Cat::kSim, Cat::kCore, Cat::kNet, Cat::kDsm, Cat::kSys,
          Cat::kCounter, Cat::kQueue, Cat::kServe, Cat::kDbt}) {
      if (item == cat_name(c)) {
        mask |= cat_bit(c);
        found = true;
        break;
      }
    }
    if (!found) return std::nullopt;
  }
  return mask;
}

}  // namespace dqemu::trace
