// Flight-recorder tracer core (DESIGN.md §9).
//
// A bounded ring buffer of typed Records plus a monotonic causal-id
// allocator. The tracer never influences the simulation: recording is a
// side-effect-free observation, so virtual-time results are identical with
// tracing on, off, or compiled out entirely.
//
// Cost model:
//   - no tracer attached          -> one null-pointer test per site
//   - category masked off         -> one load + AND per site
//   - DQEMU_TRACING_ENABLED == 0  -> sites compile to nothing at all
//
// Instrumentation sites are written as
//
//     if (trace::wants(tracer_, trace::Cat::kNet)) {
//       tracer_->record({...});
//     }
//
// With tracing compiled out, `wants` is a constexpr false and the whole
// block is dead code.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

#ifndef DQEMU_TRACING_ENABLED
#define DQEMU_TRACING_ENABLED 1
#endif

namespace dqemu::trace {

struct TraceConfig {
  /// Bitmask of Cat values accepted by wants().
  std::uint32_t categories = kDefaultCategories;
  /// Ring capacity in records; the oldest records are dropped on overflow
  /// (flight-recorder semantics: the tail of the run always survives).
  std::size_t capacity = 1u << 20;
  /// Virtual time between counter snapshots taken by the Cluster run loop.
  DurationPs counter_interval = 10 * time_literals::kMs;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when records of category `c` should be produced.
  [[nodiscard]] bool wants(Cat c) const {
    return (config_.categories & cat_bit(c)) != 0;
  }

  /// Appends a record, overwriting the oldest one when the ring is full.
  void record(const Record& r);

  /// Allocates a fresh causal id (never 0). Chains created in event order
  /// get deterministic ids, so traces of identical runs match exactly.
  [[nodiscard]] std::uint64_t new_flow() { return next_flow_++; }

  /// Stable pointer for a dynamic name (e.g. a stats counter key). The
  /// same string always returns the same pointer.
  [[nodiscard]] const char* intern(std::string_view name);

  /// Records currently held, oldest first.
  [[nodiscard]] std::vector<Record> records() const;

  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] const TraceConfig& config() const { return config_; }

  void clear();

 private:
  TraceConfig config_;
  std::vector<Record> ring_;
  std::size_t next_ = 0;   ///< next write slot
  std::size_t count_ = 0;  ///< valid records (<= capacity)
  std::uint64_t dropped_ = 0;
  std::uint64_t next_flow_ = 1;
  /// Interned dynamic names; deque gives pointer stability.
  std::deque<std::string> interned_;
  std::map<std::string, const char*, std::less<>> intern_index_;
};

#if DQEMU_TRACING_ENABLED
/// Gate for instrumentation sites; false when no tracer is attached or the
/// category is masked off.
[[nodiscard]] inline bool wants(const Tracer* t, Cat c) {
  return t != nullptr && t->wants(c);
}
#else
/// Compiled-out path: every instrumentation block is dead code.
[[nodiscard]] constexpr bool wants(const Tracer*, Cat) { return false; }
#endif

/// Parses a comma-separated category list ("net,dsm,sys", "all",
/// "default") into a bitmask; nullopt on an unknown name.
[[nodiscard]] std::optional<std::uint32_t> parse_categories(
    std::string_view list);

}  // namespace dqemu::trace
