// Flight-recorder tracer core (DESIGN.md §9).
//
// A bounded ring buffer of typed Records plus a monotonic causal-id
// allocator. The tracer never influences the simulation: recording is a
// side-effect-free observation, so virtual-time results are identical with
// tracing on, off, or compiled out entirely.
//
// Cost model:
//   - no tracer attached          -> one null-pointer test per site
//   - category masked off         -> one load + AND per site
//   - DQEMU_TRACING_ENABLED == 0  -> sites compile to nothing at all
//
// Instrumentation sites are written as
//
//     if (trace::wants(tracer_, trace::Cat::kNet)) {
//       tracer_->record({...});
//     }
//
// With tracing compiled out, `wants` is a constexpr false and the whole
// block is dead code.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

#ifndef DQEMU_TRACING_ENABLED
#define DQEMU_TRACING_ENABLED 1
#endif

namespace dqemu::trace {

struct TraceConfig {
  /// Bitmask of Cat values accepted by wants().
  std::uint32_t categories = kDefaultCategories;
  /// Ring capacity in records; the oldest records are dropped on overflow
  /// (flight-recorder semantics: the tail of the run always survives).
  std::size_t capacity = 1u << 20;
  /// Virtual time between counter snapshots taken by the Cluster run loop.
  DurationPs counter_interval = 10 * time_literals::kMs;
};

class Tracer {
 public:
  explicit Tracer(TraceConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// True when records of category `c` should be produced.
  [[nodiscard]] bool wants(Cat c) const {
    return (config_.categories & cat_bit(c)) != 0;
  }

  /// Appends a record, overwriting the oldest one when the ring is full.
  /// Routed to the calling thread's bound shard when one is bound.
  void record(const Record& r);

  /// Allocates a fresh causal id (never 0). Chains created in event order
  /// get deterministic ids, so traces of identical runs match exactly.
  /// A bound shard allocates from its own namespace (the shard index in
  /// bits 40+, below kAutoFlowBit); export normalizes all ids by first
  /// appearance, so serial and sharded runs export identical flows.
  [[nodiscard]] std::uint64_t new_flow();

  // ---- parallel-scheduler shards (DESIGN.md §16) -------------------------
  // One shard per simulated-node event queue. While a host thread executes
  // a queue's window it binds that queue's shard; record()/new_flow() then
  // touch only shard-local state, so concurrent windows never share sinks.
  // Shards are keyed by queue (not host thread), which is what makes the
  // exported trace independent of the host thread count.

  /// Creates `count` empty shards (each with the ring capacity of the
  /// config). Call once, before any binding.
  void configure_shards(std::size_t count);

  /// Binds shard `index` to the calling thread until unbind_shard().
  void bind_shard(std::size_t index);
  void unbind_shard();

  /// Stable pointer for a dynamic name (e.g. a stats counter key). The
  /// same string always returns the same pointer.
  [[nodiscard]] const char* intern(std::string_view name);

  /// Records currently held, oldest first: the main ring followed by each
  /// shard in index order, stably sorted by time.
  [[nodiscard]] std::vector<Record> records() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] const TraceConfig& config() const { return config_; }

  void clear();

 private:
  /// One bounded ring + flow allocator; the legacy single-threaded sink
  /// and every shard are instances of this.
  struct Sink {
    std::vector<Record> ring;
    std::size_t next = 0;   ///< next write slot
    std::size_t count = 0;  ///< valid records (<= capacity)
    std::uint64_t dropped = 0;
    std::uint64_t next_flow = 1;
  };

  void append(Sink& sink, const Record& r);

  TraceConfig config_;
  Sink main_;
  /// unique_ptr keeps shard addresses stable for the thread-local binding.
  std::vector<std::unique_ptr<Sink>> shards_;
  /// Interned dynamic names; deque gives pointer stability.
  std::deque<std::string> interned_;
  std::map<std::string, const char*, std::less<>> intern_index_;

  static thread_local Tracer* bound_owner_;
  static thread_local Sink* bound_sink_;
  static thread_local std::uint64_t bound_index_;
};

#if DQEMU_TRACING_ENABLED
/// Gate for instrumentation sites; false when no tracer is attached or the
/// category is masked off.
[[nodiscard]] inline bool wants(const Tracer* t, Cat c) {
  return t != nullptr && t->wants(c);
}
#else
/// Compiled-out path: every instrumentation block is dead code.
[[nodiscard]] constexpr bool wants(const Tracer*, Cat) { return false; }
#endif

/// Parses a comma-separated category list ("net,dsm,sys", "all",
/// "default") into a bitmask; nullopt on an unknown name.
[[nodiscard]] std::optional<std::uint32_t> parse_categories(
    std::string_view list);

}  // namespace dqemu::trace
