// Trace exporters.
//
// Two formats:
//   - Chrome trace_event JSON ("JSON Array Format" with metadata), loadable
//     in Perfetto (ui.perfetto.dev) and chrome://tracing. One process per
//     simulated node; inside it one track per simulated core plus NIC and
//     manager tracks. Causal chains become async events keyed by flow id.
//   - A compact line-per-record text dump used by tests (byte-identical
//     across identical runs) and for quick grepping.
//
// Both emitters format virtual time deterministically with integer math
// only, so trace bytes are a function of the simulation alone.
#pragma once

#include <iosfwd>
#include <string>

#include "trace/tracer.hpp"

namespace dqemu::trace {

/// Writes the full Chrome trace_event JSON document.
void write_chrome_json(const Tracer& tracer, std::ostream& out);

/// Writes the compact text dump, one record per line, oldest first.
void write_text(const Tracer& tracer, std::ostream& out);

/// Convenience: Chrome JSON as a string.
[[nodiscard]] std::string to_chrome_json(const Tracer& tracer);

/// Convenience: text dump as a string.
[[nodiscard]] std::string to_text(const Tracer& tracer);

}  // namespace dqemu::trace
