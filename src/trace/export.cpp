#include "trace/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

namespace dqemu::trace {
namespace {

/// Canonical export order + flow-id normalization (DESIGN.md §16).
///
/// Records at equal times are ordered by (node, track), then by content.
/// The content refinement matters for lanes the master plane shares with
/// cross-node deliveries: two events at the same picosecond on the same
/// queue fire in (time, seq) order, and seq assignment is the one thing
/// the serial and the partitioned kernel legitimately disagree on (the
/// serial kernel numbers events in global schedule order, the partitioned
/// one per queue with mailbox drains at barriers). Sorting same-instant
/// records of one lane by content erases that difference. Span records
/// order close-before-open so back-to-back spans keep nesting; flow ids
/// stay out of the key because they are exactly the run-dependent value
/// being normalized below.
///
/// Causal ids are then renumbered by first appearance in that order:
/// the serial kernel allocates flow ids from one counter in global event
/// order, the parallel kernel from per-shard namespaces, and only
/// normalization makes the two export byte-identically. kAutoFlowBit
/// survives the renumbering (receivers key on it).
std::vector<Record> canonical_records(const Tracer& tracer) {
  std::vector<Record> records = tracer.records();
  // kSpanEnd first: "previous span closes, next one opens" at the same
  // instant is common; a zero-length span is not.
  const auto kind_rank = [](Kind k) {
    return k == Kind::kSpanEnd ? -1 : static_cast<int>(k);
  };
  std::stable_sort(
      records.begin(), records.end(),
      [&](const Record& a, const Record& b) {
        if (std::tie(a.time, a.node, a.track) !=
            std::tie(b.time, b.node, b.track)) {
          return std::tie(a.time, a.node, a.track) <
                 std::tie(b.time, b.node, b.track);
        }
        const int ra = kind_rank(a.kind), rb = kind_rank(b.kind);
        if (ra != rb) return ra < rb;
        const int names = std::strcmp(a.name != nullptr ? a.name : "",
                                      b.name != nullptr ? b.name : "");
        if (names != 0) return names < 0;
        return std::tie(a.tid, a.a, a.b) < std::tie(b.tid, b.a, b.b);
      });
  std::map<std::uint64_t, std::uint64_t> remap;
  std::uint64_t next = 1;
  for (Record& r : records) {
    if (r.flow == 0) continue;
    const std::uint64_t key = r.flow & ~kAutoFlowBit;
    auto [it, fresh] = remap.try_emplace(key, 0);
    if (fresh) it->second = next++;
    r.flow = it->second | (r.flow & kAutoFlowBit);
  }
  return records;
}

/// Virtual picoseconds -> Chrome's microsecond timestamps, formatted with
/// integer math so output is bit-stable ("12.000345").
void append_ts(std::string& out, TimePs ps) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%06" PRIu64, ps / 1'000'000,
                ps % 1'000'000);
  out += buf;
}

void append_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

/// Human-readable track name inside a node's process.
std::string track_name(std::uint16_t track) {
  if (track >= kTrackManagerBase) {
    return "manager " + std::to_string(track - kTrackManagerBase);
  }
  if (track >= kTrackCoreBase) {
    return "core " + std::to_string(track - kTrackCoreBase);
  }
  switch (track) {
    case kTrackNode: return "node";
    case kTrackNic: return "nic";
    case kTrackManager: return "manager";
    default: return "track " + std::to_string(track);
  }
}

char kind_char(Kind k) {
  switch (k) {
    case Kind::kSpanBegin: return 'B';
    case Kind::kSpanEnd: return 'E';
    case Kind::kInstant: return 'i';
    case Kind::kCounter: return 'C';
    case Kind::kFlowBegin: return 'b';
    case Kind::kFlowStep: return 'n';
    case Kind::kFlowEnd: return 'e';
  }
  return '?';
}

void append_event(std::string& out, const Record& r) {
  out += "{\"name\":\"";
  append_escaped(out, r.name != nullptr ? r.name : "?");
  out += "\",\"cat\":\"";
  out += cat_name(r.cat);
  out += "\",\"ph\":\"";
  out += kind_char(r.kind);
  out += "\",\"ts\":";
  append_ts(out, r.time);
  out += ",\"pid\":";
  append_u64(out, r.node);
  out += ",\"tid\":";
  append_u64(out, r.track);

  switch (r.kind) {
    case Kind::kCounter:
      out += ",\"args\":{\"value\":";
      append_u64(out, r.a);
      out += "}";
      break;
    case Kind::kInstant:
      out += ",\"s\":\"t\"";
      [[fallthrough]];
    case Kind::kSpanBegin:
    case Kind::kFlowBegin:
    case Kind::kFlowStep:
    case Kind::kFlowEnd:
    case Kind::kSpanEnd:
      if (r.kind == Kind::kFlowBegin || r.kind == Kind::kFlowStep ||
          r.kind == Kind::kFlowEnd) {
        out += ",\"id\":";
        append_u64(out, r.flow);
      }
      out += ",\"args\":{\"a\":";
      append_u64(out, r.a);
      out += ",\"b\":";
      append_u64(out, r.b);
      if (r.tid != 0) {
        out += ",\"gtid\":";
        append_u64(out, r.tid);
      }
      if (r.flow != 0 && r.kind != Kind::kFlowBegin &&
          r.kind != Kind::kFlowStep && r.kind != Kind::kFlowEnd) {
        out += ",\"flow\":";
        append_u64(out, r.flow);
      }
      out += "}";
      break;
  }
  out += "}";
}

}  // namespace

void write_chrome_json(const Tracer& tracer, std::ostream& out) {
  const std::vector<Record> records = canonical_records(tracer);

  // Metadata first: name every (node) process and (node, track) lane that
  // appears in the trace, so Perfetto shows meaningful labels.
  std::set<NodeId> nodes;
  std::set<std::pair<NodeId, std::uint16_t>> tracks;
  for (const Record& r : records) {
    nodes.insert(r.node);
    if (r.kind != Kind::kCounter) tracks.emplace(r.node, r.track);
  }

  std::string body;
  body += "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) body += ",\n";
    first = false;
  };

  for (const NodeId node : nodes) {
    sep();
    body += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":";
    append_u64(body, node);
    body += ",\"args\":{\"name\":\"";
    body += (node == kMasterNode) ? "node 0 (master)"
                                  : "node " + std::to_string(node);
    body += "\"}}";
  }
  for (const auto& [node, track] : tracks) {
    sep();
    body += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":";
    append_u64(body, node);
    body += ",\"tid\":";
    append_u64(body, track);
    body += ",\"args\":{\"name\":\"";
    body += track_name(track);
    body += "\"}}";
  }

  for (const Record& r : records) {
    sep();
    append_event(body, r);
  }
  body += "],\"displayTimeUnit\":\"ns\"}\n";
  out << body;
}

void write_text(const Tracer& tracer, std::ostream& out) {
  std::string body;
  for (const Record& r : canonical_records(tracer)) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%14" PRIu64 " %c %-7s n%-2u t%-2u %-24s tid=%-4u"
                  " flow=%-6" PRIu64 " a=%" PRIu64 " b=%" PRIu64 "\n",
                  r.time, kind_char(r.kind), cat_name(r.cat),
                  unsigned(r.node), unsigned(r.track),
                  r.name != nullptr ? r.name : "?", r.tid, r.flow, r.a, r.b);
    body += buf;
  }
  out << body;
}

std::string to_chrome_json(const Tracer& tracer) {
  std::ostringstream out;
  write_chrome_json(tracer, out);
  return out.str();
}

std::string to_text(const Tracer& tracer) {
  std::ostringstream out;
  write_text(tracer, out);
  return out.str();
}

}  // namespace dqemu::trace
