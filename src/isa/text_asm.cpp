#include "isa/text_asm.hpp"

#include <cctype>
#include <charconv>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/assembler.hpp"

namespace dqemu::isa {
namespace {

/// Tokenized operand: register, FP register, immediate, symbol, or a
/// mem-style "offset(base)" pair.
struct Operand {
  enum class Kind { kGpr, kFpr, kImm, kSym, kMem } kind = Kind::kImm;
  std::uint8_t reg = 0;
  std::int64_t imm = 0;
  double fimm = 0.0;
  bool is_float = false;
  std::string sym;
  std::uint8_t mem_base = 0;
  std::int64_t mem_off = 0;
};

class Parser {
 public:
  explicit Parser(std::string_view source, GuestAddr code_origin)
      : source_(source), asm_(code_origin) {}

  Result<Program> run() {
    std::size_t line_start = 0;
    line_no_ = 0;
    while (line_start <= source_.size()) {
      ++line_no_;
      std::size_t line_end = source_.find('\n', line_start);
      if (line_end == std::string_view::npos) line_end = source_.size();
      Status status =
          parse_line(source_.substr(line_start, line_end - line_start));
      if (!status.is_ok()) return status;
      line_start = line_end + 1;
      if (line_end == source_.size()) break;
    }
    if (entry_sym_.has_value()) {
      auto it = labels_.find(*entry_sym_);
      if (it == labels_.end())
        return error("unknown .entry symbol '" + *entry_sym_ + "'");
      asm_.set_entry(it->second);
    }
    return asm_.finalize();
  }

 private:
  Status error(std::string message) const {
    return Status::invalid_argument("line " + std::to_string(line_no_) +
                                    ": " + std::move(message));
  }

  static std::string_view strip(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
      s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
      s.remove_suffix(1);
    return s;
  }

  static std::string_view strip_comment(std::string_view line) {
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (c == ';' || c == '#') return line.substr(0, i);
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/')
        return line.substr(0, i);
      if (c == '"') {  // skip string literal
        ++i;
        while (i < line.size() && line[i] != '"') {
          if (line[i] == '\\') ++i;
          ++i;
        }
      }
    }
    return line;
  }

  Assembler::Label get_label(const std::string& name) {
    auto it = labels_.find(name);
    if (it != labels_.end()) return it->second;
    Assembler::Label label = asm_.make_label(name);
    labels_.emplace(name, label);
    return label;
  }

  static std::optional<std::uint8_t> parse_gpr(std::string_view name) {
    static const std::map<std::string_view, std::uint8_t> kMap = {
        {"zero", 0}, {"a0", 1},  {"a1", 2},  {"a2", 3}, {"a3", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},  {"t3", 8}, {"t4", 9},
        {"s0", 10},  {"s1", 11}, {"tp", 12}, {"sp", 13},
        {"ra", 14},  {"s2", 15}};
    if (auto it = kMap.find(name); it != kMap.end()) return it->second;
    if (name.size() >= 2 && name[0] == 'r') {
      unsigned value = 0;
      auto [p, ec] = std::from_chars(name.data() + 1, name.data() + name.size(), value);
      if (ec == std::errc() && p == name.data() + name.size() && value < kNumGpr)
        return static_cast<std::uint8_t>(value);
    }
    return std::nullopt;
  }

  static std::optional<std::uint8_t> parse_fpr(std::string_view name) {
    if (name.size() >= 2 && name[0] == 'f' && name != "fence") {
      unsigned value = 0;
      auto [p, ec] = std::from_chars(name.data() + 1, name.data() + name.size(), value);
      if (ec == std::errc() && p == name.data() + name.size() && value < kNumFpr)
        return static_cast<std::uint8_t>(value);
    }
    return std::nullopt;
  }

  static std::optional<std::int64_t> parse_int(std::string_view text) {
    text = strip(text);
    if (text.empty()) return std::nullopt;
    bool negative = false;
    if (text.front() == '-' || text.front() == '+') {
      negative = text.front() == '-';
      text.remove_prefix(1);
    }
    int base = 10;
    if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
      base = 16;
      text.remove_prefix(2);
    }
    std::uint64_t value = 0;
    auto [p, ec] = std::from_chars(text.data(), text.data() + text.size(), value, base);
    if (ec != std::errc() || p != text.data() + text.size()) return std::nullopt;
    return negative ? -static_cast<std::int64_t>(value)
                    : static_cast<std::int64_t>(value);
  }

  std::optional<Operand> parse_operand(std::string_view text) {
    text = strip(text);
    if (text.empty()) return std::nullopt;
    Operand op;
    // "offset(base)" memory form.
    if (const std::size_t paren = text.find('('); paren != std::string_view::npos &&
                                                  text.back() == ')') {
      const auto off = parse_int(text.substr(0, paren));
      const auto base = parse_gpr(strip(
          text.substr(paren + 1, text.size() - paren - 2)));
      if (!base.has_value()) return std::nullopt;
      op.kind = Operand::Kind::kMem;
      op.mem_base = *base;
      op.mem_off = off.value_or(0);
      return op;
    }
    if (auto gpr = parse_gpr(text)) {
      op.kind = Operand::Kind::kGpr;
      op.reg = *gpr;
      return op;
    }
    if (auto fpr = parse_fpr(text)) {
      op.kind = Operand::Kind::kFpr;
      op.reg = *fpr;
      return op;
    }
    if (auto imm = parse_int(text)) {
      op.kind = Operand::Kind::kImm;
      op.imm = *imm;
      return op;
    }
    // Floating-point literal (for .double / fli).
    if (text.find('.') != std::string_view::npos ||
        text.find('e') != std::string_view::npos) {
      char* end = nullptr;
      std::string buf(text);
      const double value = std::strtod(buf.c_str(), &end);
      if (end == buf.c_str() + buf.size()) {
        op.kind = Operand::Kind::kImm;
        op.is_float = true;
        op.fimm = value;
        return op;
      }
    }
    op.kind = Operand::Kind::kSym;
    op.sym = std::string(text);
    return op;
  }

  static std::vector<std::string_view> split_commas(std::string_view s) {
    std::vector<std::string_view> parts;
    std::size_t start = 0;
    int depth = 0;
    bool in_string = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '"') in_string = !in_string;
      if (in_string) continue;
      if (c == '(') ++depth;
      if (c == ')') --depth;
      if (c == ',' && depth == 0) {
        parts.push_back(s.substr(start, i - start));
        start = i + 1;
      }
    }
    if (start < s.size()) parts.push_back(s.substr(start));
    return parts;
  }

  Status parse_line(std::string_view raw) {
    std::string_view line = strip(strip_comment(raw));
    if (line.empty()) return Status::ok();

    // Leading "label:" prefixes (possibly several).
    while (true) {
      std::size_t colon = std::string_view::npos;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (c == ':') {
          colon = i;
          break;
        }
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.')) {
          break;
        }
      }
      if (colon == std::string_view::npos || colon == 0) break;
      const std::string name(strip(line.substr(0, colon)));
      Assembler::Label label = get_label(name);
      if (in_data_) {
        asm_.bind_data(label);
      } else {
        asm_.bind(label);
      }
      line = strip(line.substr(colon + 1));
      if (line.empty()) return Status::ok();
    }

    // Mnemonic + operand list.
    std::size_t space = line.find_first_of(" \t");
    std::string mnemonic(line.substr(0, space));
    for (char& c : mnemonic)
      c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    std::string_view rest =
        space == std::string_view::npos ? std::string_view{} : strip(line.substr(space));

    if (mnemonic[0] == '.') return parse_directive(mnemonic, rest);
    return parse_instruction(mnemonic, rest);
  }

  Status parse_directive(const std::string& name, std::string_view rest) {
    if (name == ".text") {
      in_data_ = false;
      return Status::ok();
    }
    if (name == ".data") {
      in_data_ = true;
      return Status::ok();
    }
    if (name == ".entry") {
      entry_sym_ = std::string(strip(rest));
      return Status::ok();
    }
    if (name == ".align") {
      const auto value = parse_int(rest);
      if (!value.has_value() || *value <= 0 || (*value & (*value - 1)) != 0)
        return error(".align needs a power-of-two argument");
      asm_.d_align(static_cast<std::uint32_t>(*value));
      return Status::ok();
    }
    if (name == ".space") {
      const auto value = parse_int(rest);
      if (!value.has_value() || *value < 0) return error(".space needs a size");
      asm_.d_space(static_cast<std::uint32_t>(*value));
      return Status::ok();
    }
    if (name == ".word" || name == ".half" || name == ".byte" ||
        name == ".double") {
      for (std::string_view part : split_commas(rest)) {
        part = strip(part);
        if (name == ".double") {
          char* end = nullptr;
          std::string buf(part);
          const double value = std::strtod(buf.c_str(), &end);
          if (end != buf.c_str() + buf.size())
            return error("bad .double literal '" + buf + "'");
          asm_.d_double(value);
          continue;
        }
        const auto value = parse_int(part);
        if (!value.has_value())
          return error("bad integer literal '" + std::string(part) + "'");
        if (name == ".word")
          asm_.d_word(static_cast<std::uint32_t>(*value));
        else if (name == ".half")
          asm_.d_half(static_cast<std::uint16_t>(*value));
        else
          asm_.d_byte(static_cast<std::uint8_t>(*value));
      }
      return Status::ok();
    }
    if (name == ".asciz" || name == ".ascii") {
      const std::string_view s = strip(rest);
      if (s.size() < 2 || s.front() != '"' || s.back() != '"')
        return error(name + " needs a quoted string");
      std::string decoded;
      for (std::size_t i = 1; i + 1 < s.size(); ++i) {
        char c = s[i];
        if (c == '\\' && i + 2 < s.size()) {
          ++i;
          switch (s[i]) {
            case 'n': c = '\n'; break;
            case 't': c = '\t'; break;
            case '0': c = '\0'; break;
            case '\\': c = '\\'; break;
            case '"': c = '"'; break;
            default: c = s[i]; break;
          }
        }
        decoded.push_back(c);
      }
      if (name == ".asciz") {
        asm_.d_asciz(decoded);
      } else {
        asm_.d_bytes({reinterpret_cast<const std::uint8_t*>(decoded.data()),
                      decoded.size()});
      }
      return Status::ok();
    }
    return error("unknown directive '" + name + "'");
  }

  Status parse_instruction(const std::string& mnemonic, std::string_view rest) {
    if (in_data_) return error("instruction in .data section");
    std::vector<Operand> ops;
    for (std::string_view part : split_commas(rest)) {
      auto op = parse_operand(part);
      if (!op.has_value())
        return error("bad operand '" + std::string(strip(part)) + "'");
      ops.push_back(std::move(*op));
    }
    return emit(mnemonic, ops);
  }

  // Operand accessors with validation.
  Status need(std::size_t n, const std::vector<Operand>& ops,
              const std::string& mnemonic) const {
    if (ops.size() != n)
      return error(mnemonic + " expects " + std::to_string(n) + " operands");
    return Status::ok();
  }

  Status emit(const std::string& m, const std::vector<Operand>& ops);

  std::string_view source_;
  Assembler asm_;
  std::map<std::string, Assembler::Label> labels_;
  std::optional<std::string> entry_sym_;
  bool in_data_ = false;
  std::uint64_t line_no_ = 0;
};

Status Parser::emit(const std::string& m, const std::vector<Operand>& ops) {
  using K = Operand::Kind;
  auto gpr = [&](std::size_t i) { return static_cast<Reg>(ops[i].reg); };
  auto fpr = [&](std::size_t i) { return static_cast<FReg>(ops[i].reg); };
  auto is = [&](std::size_t i, K k) {
    return i < ops.size() && ops[i].kind == k;
  };
  auto imm = [&](std::size_t i) { return static_cast<std::int32_t>(ops[i].imm); };
  auto sym_label = [&](std::size_t i) { return get_label(ops[i].sym); };

  // R-type integer three-register ops.
  static const std::map<std::string, void (Assembler::*)(Reg, Reg, Reg)>
      kRType = {{"add", &Assembler::add},   {"sub", &Assembler::sub},
                {"mul", &Assembler::mul},   {"div", &Assembler::div},
                {"divu", &Assembler::divu}, {"rem", &Assembler::rem},
                {"remu", &Assembler::remu}, {"and", &Assembler::and_},
                {"or", &Assembler::or_},    {"xor", &Assembler::xor_},
                {"sll", &Assembler::sll},   {"srl", &Assembler::srl},
                {"sra", &Assembler::sra},   {"slt", &Assembler::slt},
                {"sltu", &Assembler::sltu}};
  if (auto it = kRType.find(m); it != kRType.end()) {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr) || !is(2, K::kGpr))
      return error(m + " expects three integer registers");
    (asm_.*it->second)(gpr(0), gpr(1), gpr(2));
    return Status::ok();
  }

  static const std::map<std::string, void (Assembler::*)(Reg, Reg, std::int32_t)>
      kIType = {{"addi", &Assembler::addi},   {"andi", &Assembler::andi},
                {"ori", &Assembler::ori},     {"xori", &Assembler::xori},
                {"slli", &Assembler::slli},   {"srli", &Assembler::srli},
                {"srai", &Assembler::srai},   {"slti", &Assembler::slti},
                {"sltiu", &Assembler::sltiu}};
  if (auto it = kIType.find(m); it != kIType.end()) {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr) || !is(2, K::kImm))
      return error(m + " expects rd, rs1, imm");
    if (!fits_imm16(ops[2].imm)) return error("immediate out of range");
    (asm_.*it->second)(gpr(0), gpr(1), imm(2));
    return Status::ok();
  }

  // Loads: "lw rd, off(base)" or "lw rd, base, off".
  static const std::map<std::string, void (Assembler::*)(Reg, Reg, std::int32_t)>
      kLoads = {{"lb", &Assembler::lb},   {"lbu", &Assembler::lbu},
                {"lh", &Assembler::lh},   {"lhu", &Assembler::lhu},
                {"lw", &Assembler::lw}};
  if (auto it = kLoads.find(m); it != kLoads.end()) {
    if (ops.size() == 2 && is(0, K::kGpr) && is(1, K::kMem)) {
      (asm_.*it->second)(gpr(0), static_cast<Reg>(ops[1].mem_base),
                         static_cast<std::int32_t>(ops[1].mem_off));
      return Status::ok();
    }
    if (ops.size() == 3 && is(0, K::kGpr) && is(1, K::kGpr) && is(2, K::kImm)) {
      (asm_.*it->second)(gpr(0), gpr(1), imm(2));
      return Status::ok();
    }
    return error(m + " expects rd, off(base)");
  }

  // Stores: "sw src, off(base)" (note: src first, matching GNU as).
  static const std::map<std::string, void (Assembler::*)(Reg, Reg, std::int32_t)>
      kStores = {{"sb", &Assembler::sb}, {"sh", &Assembler::sh},
                 {"sw", &Assembler::sw}};
  if (auto it = kStores.find(m); it != kStores.end()) {
    if (ops.size() == 2 && is(0, K::kGpr) && is(1, K::kMem)) {
      (asm_.*it->second)(static_cast<Reg>(ops[1].mem_base), gpr(0),
                         static_cast<std::int32_t>(ops[1].mem_off));
      return Status::ok();
    }
    if (ops.size() == 3 && is(0, K::kGpr) && is(1, K::kGpr) && is(2, K::kImm)) {
      // "sw base, src, off" builder order for symmetry with the API.
      (asm_.*it->second)(gpr(0), gpr(1), imm(2));
      return Status::ok();
    }
    return error(m + " expects src, off(base)");
  }

  static const std::map<std::string,
                        void (Assembler::*)(Reg, Reg, Assembler::Label)>
      kBranches = {{"beq", &Assembler::beq},   {"bne", &Assembler::bne},
                   {"blt", &Assembler::blt},   {"bge", &Assembler::bge},
                   {"bltu", &Assembler::bltu}, {"bgeu", &Assembler::bgeu}};
  if (auto it = kBranches.find(m); it != kBranches.end()) {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr) || !is(2, K::kSym))
      return error(m + " expects rs1, rs2, label");
    (asm_.*it->second)(gpr(0), gpr(1), sym_label(2));
    return Status::ok();
  }

  if (m == "jal") {
    if (ops.size() == 1 && is(0, K::kSym)) {
      asm_.jal(kRa, sym_label(0));
      return Status::ok();
    }
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kSym)) return error("jal expects rd, label");
    asm_.jal(gpr(0), sym_label(1));
    return Status::ok();
  }
  if (m == "jalr") {
    if (ops.size() == 1 && is(0, K::kGpr)) {
      asm_.jalr(kRa, gpr(0), 0);
      return Status::ok();
    }
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr) || !is(2, K::kImm))
      return error("jalr expects rd, rs1, imm");
    asm_.jalr(gpr(0), gpr(1), imm(2));
    return Status::ok();
  }
  if (m == "j") {
    DQEMU_RETURN_IF_ERROR(need(1, ops, m));
    if (!is(0, K::kSym)) return error("j expects a label");
    asm_.j(sym_label(0));
    return Status::ok();
  }
  if (m == "call") {
    DQEMU_RETURN_IF_ERROR(need(1, ops, m));
    if (!is(0, K::kSym)) return error("call expects a label");
    asm_.call(sym_label(0));
    return Status::ok();
  }
  if (m == "ret") {
    asm_.ret();
    return Status::ok();
  }
  if (m == "nop") {
    asm_.nop();
    return Status::ok();
  }
  if (m == "mov" || m == "mv") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (is(0, K::kFpr) && is(1, K::kFpr)) {
      asm_.fmov(fpr(0), fpr(1));
      return Status::ok();
    }
    if (!is(0, K::kGpr) || !is(1, K::kGpr)) return error("mov expects rd, rs");
    asm_.mov(gpr(0), gpr(1));
    return Status::ok();
  }
  if (m == "li") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kImm)) return error("li expects rd, imm");
    asm_.li(gpr(0), ops[1].imm);
    return Status::ok();
  }
  if (m == "la") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kSym)) return error("la expects rd, label");
    asm_.la(gpr(0), sym_label(1));
    return Status::ok();
  }
  if (m == "lui") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kImm)) return error("lui expects rd, imm");
    asm_.lui(gpr(0), imm(1));
    return Status::ok();
  }
  if (m == "auipc") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kImm)) return error("auipc expects rd, imm");
    asm_.auipc(gpr(0), imm(1));
    return Status::ok();
  }
  if (m == "ll") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr)) return error("ll expects rd, rs1");
    asm_.ll(gpr(0), gpr(1));
    return Status::ok();
  }
  if (m == "sc") {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kGpr) || !is(2, K::kGpr))
      return error("sc expects rd, addr, src");
    asm_.sc(gpr(0), gpr(1), gpr(2));
    return Status::ok();
  }
  if (m == "fence") {
    asm_.fence();
    return Status::ok();
  }
  if (m == "syscall") {
    DQEMU_RETURN_IF_ERROR(need(1, ops, m));
    if (!is(0, K::kImm)) return error("syscall expects a number");
    asm_.syscall(imm(0));
    return Status::ok();
  }
  if (m == "hint") {
    DQEMU_RETURN_IF_ERROR(need(1, ops, m));
    if (!is(0, K::kImm)) return error("hint expects a group id");
    asm_.hint(imm(0));
    return Status::ok();
  }

  // FP loads/stores.
  if (m == "fld") {
    if (ops.size() == 2 && is(0, K::kFpr) && is(1, K::kMem)) {
      asm_.fld(fpr(0), static_cast<Reg>(ops[1].mem_base),
               static_cast<std::int32_t>(ops[1].mem_off));
      return Status::ok();
    }
    return error("fld expects fd, off(base)");
  }
  if (m == "fsd") {
    if (ops.size() == 2 && is(0, K::kFpr) && is(1, K::kMem)) {
      asm_.fsd(static_cast<Reg>(ops[1].mem_base), fpr(0),
               static_cast<std::int32_t>(ops[1].mem_off));
      return Status::ok();
    }
    return error("fsd expects fs, off(base)");
  }

  static const std::map<std::string, void (Assembler::*)(FReg, FReg, FReg)>
      kFR3 = {{"fadd", &Assembler::fadd}, {"fsub", &Assembler::fsub},
              {"fmul", &Assembler::fmul}, {"fdiv", &Assembler::fdiv},
              {"fmin", &Assembler::fmin}, {"fmax", &Assembler::fmax},
              {"fpow", &Assembler::fpow}};
  if (auto it = kFR3.find(m); it != kFR3.end()) {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kFpr) || !is(1, K::kFpr) || !is(2, K::kFpr))
      return error(m + " expects three FP registers");
    (asm_.*it->second)(fpr(0), fpr(1), fpr(2));
    return Status::ok();
  }

  static const std::map<std::string, void (Assembler::*)(FReg, FReg)> kFR2 = {
      {"fneg", &Assembler::fneg},   {"fabs", &Assembler::fabs_},
      {"fmov", &Assembler::fmov},   {"fsqrt", &Assembler::fsqrt},
      {"fexp", &Assembler::fexp},   {"flog", &Assembler::flog},
      {"ferf", &Assembler::ferf},   {"fsin", &Assembler::fsin},
      {"fcos", &Assembler::fcos}};
  if (auto it = kFR2.find(m); it != kFR2.end()) {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kFpr) || !is(1, K::kFpr))
      return error(m + " expects two FP registers");
    (asm_.*it->second)(fpr(0), fpr(1));
    return Status::ok();
  }

  if (m == "fcvt.d.w") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kFpr) || !is(1, K::kGpr)) return error("fcvt.d.w expects fd, rs");
    asm_.fcvt_d_w(fpr(0), gpr(1));
    return Status::ok();
  }
  if (m == "fcvt.w.d") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kFpr)) return error("fcvt.w.d expects rd, fs");
    asm_.fcvt_w_d(gpr(0), fpr(1));
    return Status::ok();
  }
  static const std::map<std::string, void (Assembler::*)(Reg, FReg, FReg)>
      kFCmp = {{"flt", &Assembler::flt}, {"fle", &Assembler::fle},
               {"feq", &Assembler::feq}};
  if (auto it = kFCmp.find(m); it != kFCmp.end()) {
    DQEMU_RETURN_IF_ERROR(need(3, ops, m));
    if (!is(0, K::kGpr) || !is(1, K::kFpr) || !is(2, K::kFpr))
      return error(m + " expects rd, fs1, fs2");
    (asm_.*it->second)(gpr(0), fpr(1), fpr(2));
    return Status::ok();
  }
  if (m == "fli") {
    DQEMU_RETURN_IF_ERROR(need(2, ops, m));
    if (!is(0, K::kFpr) || !is(1, K::kImm)) return error("fli expects fd, literal");
    asm_.fli(fpr(0), ops[1].is_float ? ops[1].fimm
                                     : static_cast<double>(ops[1].imm));
    return Status::ok();
  }

  return error("unknown mnemonic '" + m + "'");
}

}  // namespace

Result<Program> assemble_text(std::string_view source, GuestAddr code_origin) {
  Parser parser(source, code_origin);
  return parser.run();
}

}  // namespace dqemu::isa
