// Programmatic GA32 assembler.
//
// Workload generators and tests build guest programs through this API: one
// method per instruction, label-based control flow with two-pass fixups, a
// separate data stream (placed on the page after the code at finalize), and
// the usual pseudo-instructions (li/la/mov/call/ret, FP constant loads via
// an automatic literal pool). A text front-end lives in text_asm.hpp.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "isa/isa.hpp"
#include "isa/program.hpp"

namespace dqemu::isa {

/// FP register designators (separate file from the integer Reg enum).
enum FReg : std::uint8_t {
  kF0 = 0, kF1, kF2, kF3, kF4, kF5, kF6, kF7,
  kF8, kF9, kF10, kF11, kF12, kF13, kF14, kF15,
};

class Assembler {
 public:
  /// Label handle. Valid only for the Assembler that created it.
  struct Label {
    std::uint32_t id = 0;
  };

  explicit Assembler(GuestAddr code_origin = kDefaultCodeOrigin);

  // ----- labels ---------------------------------------------------------
  /// Creates an unbound label; `name` (if non-empty) is exported in the
  /// program's symbol table.
  Label make_label(std::string name = {});
  /// Binds `label` to the current code position.
  void bind(Label label);
  /// Binds `label` to the current data position.
  void bind_data(Label label);
  /// Creates a label already bound to the current code position.
  Label here(std::string name = {});

  /// Byte offset of the next code instruction from the code origin.
  [[nodiscard]] std::uint32_t code_size() const {
    return static_cast<std::uint32_t>(code_.size());
  }

  // ----- raw emit -------------------------------------------------------
  void emit(const Insn& insn);

  // ----- integer R-type -------------------------------------------------
  void add(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kAdd, rd, rs1, rs2); }
  void sub(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSub, rd, rs1, rs2); }
  void mul(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kMul, rd, rs1, rs2); }
  void div(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kDiv, rd, rs1, rs2); }
  void divu(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kDivu, rd, rs1, rs2); }
  void rem(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kRem, rd, rs1, rs2); }
  void remu(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kRemu, rd, rs1, rs2); }
  void and_(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kAnd, rd, rs1, rs2); }
  void or_(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kOr, rd, rs1, rs2); }
  void xor_(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kXor, rd, rs1, rs2); }
  void sll(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSll, rd, rs1, rs2); }
  void srl(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSrl, rd, rs1, rs2); }
  void sra(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSra, rd, rs1, rs2); }
  void slt(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSlt, rd, rs1, rs2); }
  void sltu(Reg rd, Reg rs1, Reg rs2) { emit_r(Opcode::kSltu, rd, rs1, rs2); }

  // ----- integer I-type -------------------------------------------------
  void addi(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kAddi, rd, rs1, imm); }
  void andi(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kAndi, rd, rs1, imm); }
  void ori(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kOri, rd, rs1, imm); }
  void xori(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kXori, rd, rs1, imm); }
  void slli(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kSlli, rd, rs1, imm); }
  void srli(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kSrli, rd, rs1, imm); }
  void srai(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kSrai, rd, rs1, imm); }
  void slti(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kSlti, rd, rs1, imm); }
  void sltiu(Reg rd, Reg rs1, std::int32_t imm) { emit_i(Opcode::kSltiu, rd, rs1, imm); }
  void lui(Reg rd, std::int32_t imm20) { emit_u(Opcode::kLui, rd, imm20); }
  void auipc(Reg rd, std::int32_t imm20) { emit_u(Opcode::kAuipc, rd, imm20); }

  // ----- memory ---------------------------------------------------------
  void lb(Reg rd, Reg base, std::int32_t off) { emit_i(Opcode::kLb, rd, base, off); }
  void lbu(Reg rd, Reg base, std::int32_t off) { emit_i(Opcode::kLbu, rd, base, off); }
  void lh(Reg rd, Reg base, std::int32_t off) { emit_i(Opcode::kLh, rd, base, off); }
  void lhu(Reg rd, Reg base, std::int32_t off) { emit_i(Opcode::kLhu, rd, base, off); }
  void lw(Reg rd, Reg base, std::int32_t off) { emit_i(Opcode::kLw, rd, base, off); }
  void sb(Reg base, Reg src, std::int32_t off) { emit_s(Opcode::kSb, base, src, off); }
  void sh(Reg base, Reg src, std::int32_t off) { emit_s(Opcode::kSh, base, src, off); }
  void sw(Reg base, Reg src, std::int32_t off) { emit_s(Opcode::kSw, base, src, off); }

  // ----- control flow ---------------------------------------------------
  void beq(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBeq, rs1, rs2, target); }
  void bne(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBne, rs1, rs2, target); }
  void blt(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBlt, rs1, rs2, target); }
  void bge(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBge, rs1, rs2, target); }
  void bltu(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBltu, rs1, rs2, target); }
  void bgeu(Reg rs1, Reg rs2, Label target) { emit_b(Opcode::kBgeu, rs1, rs2, target); }
  void jal(Reg rd, Label target);
  void jalr(Reg rd, Reg rs1, std::int32_t imm = 0) { emit_i(Opcode::kJalr, rd, rs1, imm); }
  /// Unconditional jump.
  void j(Label target) { jal(kZero, target); }
  /// Call: ra = pc + 4, jump to target.
  void call(Label target) { jal(kRa, target); }
  /// Return through ra.
  void ret() { jalr(kZero, kRa, 0); }

  // ----- atomics / system -----------------------------------------------
  void ll(Reg rd, Reg addr) { emit_i(Opcode::kLl, rd, addr, 0); }
  void sc(Reg rd, Reg addr, Reg src) { emit_r(Opcode::kSc, rd, addr, src); }
  void fence() { emit_n(Opcode::kFence, 0); }
  void syscall(std::int32_t number) { emit_n(Opcode::kSyscall, number); }
  void hint(std::int32_t group) { emit_n(Opcode::kHint, group); }

  // ----- FP -------------------------------------------------------------
  void fld(FReg fd, Reg base, std::int32_t off) { emit_fi(Opcode::kFld, fd, base, off); }
  void fsd(Reg base, FReg src, std::int32_t off) { emit_fs(Opcode::kFsd, base, src, off); }
  void fadd(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFadd, fd, fs1, fs2); }
  void fsub(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFsub, fd, fs1, fs2); }
  void fmul(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFmul, fd, fs1, fs2); }
  void fdiv(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFdiv, fd, fs1, fs2); }
  void fmin(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFmin, fd, fs1, fs2); }
  void fmax(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFmax, fd, fs1, fs2); }
  void fneg(FReg fd, FReg fs1) { emit_f(Opcode::kFneg, fd, fs1, kF0); }
  void fabs_(FReg fd, FReg fs1) { emit_f(Opcode::kFabs, fd, fs1, kF0); }
  void fmov(FReg fd, FReg fs1) { emit_f(Opcode::kFmov, fd, fs1, kF0); }
  void fcvt_d_w(FReg fd, Reg rs1) {
    emit({Opcode::kFcvtdw, std::uint8_t(fd), std::uint8_t(rs1), 0, 0});
  }
  void fcvt_w_d(Reg rd, FReg fs1) {
    emit({Opcode::kFcvtwd, std::uint8_t(rd), std::uint8_t(fs1), 0, 0});
  }
  void flt(Reg rd, FReg fs1, FReg fs2) {
    emit({Opcode::kFlt, std::uint8_t(rd), std::uint8_t(fs1), std::uint8_t(fs2), 0});
  }
  void fle(Reg rd, FReg fs1, FReg fs2) {
    emit({Opcode::kFle, std::uint8_t(rd), std::uint8_t(fs1), std::uint8_t(fs2), 0});
  }
  void feq(Reg rd, FReg fs1, FReg fs2) {
    emit({Opcode::kFeq, std::uint8_t(rd), std::uint8_t(fs1), std::uint8_t(fs2), 0});
  }
  void fsqrt(FReg fd, FReg fs1) { emit_f(Opcode::kFsqrt, fd, fs1, kF0); }
  void fexp(FReg fd, FReg fs1) { emit_f(Opcode::kFexp, fd, fs1, kF0); }
  void flog(FReg fd, FReg fs1) { emit_f(Opcode::kFlog, fd, fs1, kF0); }
  void fpow(FReg fd, FReg fs1, FReg fs2) { emit_f(Opcode::kFpow, fd, fs1, fs2); }
  void ferf(FReg fd, FReg fs1) { emit_f(Opcode::kFerf, fd, fs1, kF0); }
  void fsin(FReg fd, FReg fs1) { emit_f(Opcode::kFsin, fd, fs1, kF0); }
  void fcos(FReg fd, FReg fs1) { emit_f(Opcode::kFcos, fd, fs1, kF0); }

  // ----- pseudo-instructions ---------------------------------------------
  /// Loads a 32-bit constant (1 or 2 instructions).
  void li(Reg rd, std::int64_t value);
  /// Loads the absolute address of a label (always 2 instructions).
  void la(Reg rd, Label target);
  /// Loads an absolute address known at emit time.
  void la(Reg rd, GuestAddr addr);
  void mov(Reg rd, Reg rs) { add(rd, rs, kZero); }
  void nop() { addi(kZero, kZero, 0); }
  /// Loads a double constant from the automatic literal pool (3 insns;
  /// clobbers `scratch`).
  void fli(FReg fd, double value, Reg scratch = kT4);

  // ----- data stream ------------------------------------------------------
  void d_align(std::uint32_t alignment);
  void d_byte(std::uint8_t v);
  void d_half(std::uint16_t v);
  void d_word(std::uint32_t v);
  void d_double(double v);
  void d_space(std::uint32_t n);
  void d_bytes(std::span<const std::uint8_t> bytes);
  void d_asciz(std::string_view s);

  // ----- finalize -----------------------------------------------------------
  /// Overrides the entry point (defaults to the code origin).
  void set_entry(Label label);

  /// Resolves labels and fixups and produces the program image. Fails on
  /// unbound labels and out-of-range branch offsets.
  [[nodiscard]] Result<Program> finalize();

 private:
  enum class FixupKind { kBranch16, kJal20, kLuiOriPair };
  struct Fixup {
    std::uint32_t code_offset;  ///< first patched instruction
    std::uint32_t label_id;
    FixupKind kind;
  };
  struct LabelInfo {
    std::string name;
    bool bound = false;
    bool in_data = false;
    std::uint32_t offset = 0;  ///< within code or data stream
  };

  void emit_r(Opcode op, Reg rd, Reg rs1, Reg rs2) {
    emit({op, std::uint8_t(rd), std::uint8_t(rs1), std::uint8_t(rs2), 0});
  }
  void emit_i(Opcode op, Reg rd, Reg rs1, std::int32_t imm) {
    emit({op, std::uint8_t(rd), std::uint8_t(rs1), 0, imm});
  }
  void emit_u(Opcode op, Reg rd, std::int32_t imm20) {
    emit({op, std::uint8_t(rd), 0, 0, imm20});
  }
  void emit_s(Opcode op, Reg base, Reg src, std::int32_t imm) {
    emit({op, 0, std::uint8_t(base), std::uint8_t(src), imm});
  }
  void emit_b(Opcode op, Reg rs1, Reg rs2, Label target);
  void emit_n(Opcode op, std::int32_t imm) { emit({op, 0, 0, 0, imm}); }
  void emit_f(Opcode op, FReg fd, FReg fs1, FReg fs2) {
    emit({op, std::uint8_t(fd), std::uint8_t(fs1), std::uint8_t(fs2), 0});
  }
  void emit_fi(Opcode op, FReg fd, Reg base, std::int32_t imm) {
    emit({op, std::uint8_t(fd), std::uint8_t(base), 0, imm});
  }
  void emit_fs(Opcode op, Reg base, FReg src, std::int32_t imm) {
    emit({op, 0, std::uint8_t(base), std::uint8_t(src), imm});
  }

  void patch_word(std::uint32_t code_offset, std::uint32_t word);
  [[nodiscard]] std::uint32_t read_word(std::uint32_t code_offset) const;

  GuestAddr code_origin_;
  std::vector<std::uint8_t> code_;
  std::vector<std::uint8_t> data_;
  std::vector<LabelInfo> labels_;
  std::vector<Fixup> fixups_;
  std::map<std::uint64_t, Label> literal_pool_;  ///< double bits -> label
  std::uint32_t entry_label_ = UINT32_MAX;
  Status first_error_;
};

}  // namespace dqemu::isa
