// A linked guest program image, ready to load into a node's guest memory.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dqemu::isa {

/// Default load address of the code section; the zero page is never mapped
/// so null dereferences fault.
inline constexpr GuestAddr kDefaultCodeOrigin = 0x0001'0000;

/// One contiguous run of initialized bytes in the guest address space.
struct Section {
  GuestAddr addr = 0;
  std::vector<std::uint8_t> bytes;
};

/// Output of the assembler: sections, entry point, symbols and the initial
/// program break (end of the static image, where the heap starts).
struct Program {
  std::vector<Section> sections;
  GuestAddr entry = kDefaultCodeOrigin;
  GuestAddr brk_start = 0;
  std::map<std::string, GuestAddr> symbols;

  /// Address of a named symbol; asserts it exists (test convenience).
  [[nodiscard]] GuestAddr symbol(const std::string& name) const {
    auto it = symbols.find(name);
    return it == symbols.end() ? 0 : it->second;
  }
};

}  // namespace dqemu::isa
