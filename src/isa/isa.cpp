#include "isa/isa.hpp"

#include <array>
#include <cassert>
#include <cstdio>

namespace dqemu::isa {
namespace {

constexpr InsnInfo make(std::string_view mnemonic, Format format,
                        bool is_load = false, bool is_store = false,
                        bool ends_block = false, bool is_fp = false,
                        bool is_fp_special = false,
                        std::uint8_t mem_bytes = 0) {
  return InsnInfo{mnemonic, format, is_load, is_store, ends_block,
                  is_fp, is_fp_special, mem_bytes};
}

/// 256-entry table indexed by raw opcode byte. Unassigned slots have an
/// empty mnemonic.
const std::array<InsnInfo, 256>& info_table() {
  static const std::array<InsnInfo, 256> table = [] {
    std::array<InsnInfo, 256> t{};
    auto set = [&t](Opcode op, InsnInfo info) {
      t[static_cast<std::size_t>(op)] = info;
    };
    using F = Format;
    // Integer R-type.
    set(Opcode::kAdd, make("add", F::kR));
    set(Opcode::kSub, make("sub", F::kR));
    set(Opcode::kMul, make("mul", F::kR));
    set(Opcode::kDiv, make("div", F::kR));
    set(Opcode::kDivu, make("divu", F::kR));
    set(Opcode::kRem, make("rem", F::kR));
    set(Opcode::kRemu, make("remu", F::kR));
    set(Opcode::kAnd, make("and", F::kR));
    set(Opcode::kOr, make("or", F::kR));
    set(Opcode::kXor, make("xor", F::kR));
    set(Opcode::kSll, make("sll", F::kR));
    set(Opcode::kSrl, make("srl", F::kR));
    set(Opcode::kSra, make("sra", F::kR));
    set(Opcode::kSlt, make("slt", F::kR));
    set(Opcode::kSltu, make("sltu", F::kR));
    // Integer I-type.
    set(Opcode::kAddi, make("addi", F::kI));
    set(Opcode::kAndi, make("andi", F::kI));
    set(Opcode::kOri, make("ori", F::kI));
    set(Opcode::kXori, make("xori", F::kI));
    set(Opcode::kSlli, make("slli", F::kI));
    set(Opcode::kSrli, make("srli", F::kI));
    set(Opcode::kSrai, make("srai", F::kI));
    set(Opcode::kSlti, make("slti", F::kI));
    set(Opcode::kSltiu, make("sltiu", F::kI));
    // U-type.
    set(Opcode::kLui, make("lui", F::kU));
    set(Opcode::kAuipc, make("auipc", F::kU));
    // Loads.
    set(Opcode::kLb, make("lb", F::kI, true, false, false, false, false, 1));
    set(Opcode::kLbu, make("lbu", F::kI, true, false, false, false, false, 1));
    set(Opcode::kLh, make("lh", F::kI, true, false, false, false, false, 2));
    set(Opcode::kLhu, make("lhu", F::kI, true, false, false, false, false, 2));
    set(Opcode::kLw, make("lw", F::kI, true, false, false, false, false, 4));
    // Stores.
    set(Opcode::kSb, make("sb", F::kS, false, true, false, false, false, 1));
    set(Opcode::kSh, make("sh", F::kS, false, true, false, false, false, 2));
    set(Opcode::kSw, make("sw", F::kS, false, true, false, false, false, 4));
    // Branches.
    set(Opcode::kBeq, make("beq", F::kB, false, false, true));
    set(Opcode::kBne, make("bne", F::kB, false, false, true));
    set(Opcode::kBlt, make("blt", F::kB, false, false, true));
    set(Opcode::kBge, make("bge", F::kB, false, false, true));
    set(Opcode::kBltu, make("bltu", F::kB, false, false, true));
    set(Opcode::kBgeu, make("bgeu", F::kB, false, false, true));
    // Jumps.
    set(Opcode::kJal, make("jal", F::kU, false, false, true));
    set(Opcode::kJalr, make("jalr", F::kI, false, false, true));
    // Atomics & ordering.
    set(Opcode::kLl, make("ll", F::kI, true, false, false, false, false, 4));
    set(Opcode::kSc, make("sc", F::kR, false, true, false, false, false, 4));
    set(Opcode::kFence, make("fence", F::kN));
    // System. SYSCALL ends the block: it may migrate, block or exit.
    set(Opcode::kSyscall, make("syscall", F::kN, false, false, true));
    set(Opcode::kHint, make("hint", F::kN));
    // FP memory.
    set(Opcode::kFld, make("fld", F::kI, true, false, false, true, false, 8));
    set(Opcode::kFsd, make("fsd", F::kS, false, true, false, true, false, 8));
    // FP arithmetic.
    set(Opcode::kFadd, make("fadd", F::kR, false, false, false, true));
    set(Opcode::kFsub, make("fsub", F::kR, false, false, false, true));
    set(Opcode::kFmul, make("fmul", F::kR, false, false, false, true));
    set(Opcode::kFdiv, make("fdiv", F::kR, false, false, false, true));
    set(Opcode::kFmin, make("fmin", F::kR, false, false, false, true));
    set(Opcode::kFmax, make("fmax", F::kR, false, false, false, true));
    set(Opcode::kFneg, make("fneg", F::kR, false, false, false, true));
    set(Opcode::kFabs, make("fabs", F::kR, false, false, false, true));
    set(Opcode::kFmov, make("fmov", F::kR, false, false, false, true));
    set(Opcode::kFcvtdw, make("fcvt.d.w", F::kR, false, false, false, true));
    set(Opcode::kFcvtwd, make("fcvt.w.d", F::kR, false, false, false, true));
    set(Opcode::kFlt, make("flt", F::kR, false, false, false, true));
    set(Opcode::kFle, make("fle", F::kR, false, false, false, true));
    set(Opcode::kFeq, make("feq", F::kR, false, false, false, true));
    set(Opcode::kFsqrt, make("fsqrt", F::kR, false, false, false, true, true));
    set(Opcode::kFexp, make("fexp", F::kR, false, false, false, true, true));
    set(Opcode::kFlog, make("flog", F::kR, false, false, false, true, true));
    set(Opcode::kFpow, make("fpow", F::kR, false, false, false, true, true));
    set(Opcode::kFerf, make("ferf", F::kR, false, false, false, true, true));
    set(Opcode::kFsin, make("fsin", F::kR, false, false, false, true, true));
    set(Opcode::kFcos, make("fcos", F::kR, false, false, false, true, true));
    return t;
  }();
  return table;
}

constexpr std::uint32_t mask_bits(std::uint32_t value, unsigned bits) {
  return value & ((1u << bits) - 1u);
}

constexpr std::int32_t sign_extend(std::uint32_t value, unsigned bits) {
  const std::uint32_t sign = 1u << (bits - 1);
  const std::uint32_t masked = mask_bits(value, bits);
  return static_cast<std::int32_t>((masked ^ sign) - sign);
}

}  // namespace

const InsnInfo& insn_info(Opcode op) {
  return info_table()[static_cast<std::size_t>(op)];
}

bool is_valid_opcode(std::uint8_t raw) {
  return !info_table()[raw].mnemonic.empty();
}

std::uint32_t encode(const Insn& insn) {
  const InsnInfo& info = insn_info(insn.op);
  assert(!info.mnemonic.empty() && "encoding an unassigned opcode");
  const std::uint32_t op = static_cast<std::uint32_t>(insn.op) << 24;
  switch (info.format) {
    case Format::kR:
      assert(insn.rd < kNumGpr && insn.rs1 < kNumGpr && insn.rs2 < kNumGpr);
      return op | (std::uint32_t(insn.rd) << 20) |
             (std::uint32_t(insn.rs1) << 16) | (std::uint32_t(insn.rs2) << 12);
    case Format::kI:
      assert(fits_imm16(insn.imm));
      return op | (std::uint32_t(insn.rd) << 20) |
             (std::uint32_t(insn.rs1) << 16) |
             mask_bits(static_cast<std::uint32_t>(insn.imm), 16);
    case Format::kU:
      assert(insn.op == Opcode::kJal ? fits_imm20(insn.imm)
                                     : (insn.imm >= 0 && insn.imm < (1 << 20)));
      return op | (std::uint32_t(insn.rd) << 20) |
             mask_bits(static_cast<std::uint32_t>(insn.imm), 20);
    case Format::kB:
    case Format::kS:
      assert(fits_imm16(insn.imm));
      return op | (std::uint32_t(insn.rs1) << 20) |
             (std::uint32_t(insn.rs2) << 16) |
             mask_bits(static_cast<std::uint32_t>(insn.imm), 16);
    case Format::kN:
      assert(fits_imm16(insn.imm) || (insn.imm >= 0 && insn.imm <= 0xFFFF));
      return op | mask_bits(static_cast<std::uint32_t>(insn.imm), 16);
  }
  return 0;  // unreachable
}

std::optional<Insn> decode(std::uint32_t word) {
  const std::uint8_t raw_op = static_cast<std::uint8_t>(word >> 24);
  if (!is_valid_opcode(raw_op)) return std::nullopt;
  const Opcode op = static_cast<Opcode>(raw_op);
  const InsnInfo& info = insn_info(op);

  Insn insn;
  insn.op = op;
  switch (info.format) {
    case Format::kR:
      insn.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
      insn.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xF);
      insn.rs2 = static_cast<std::uint8_t>((word >> 12) & 0xF);
      break;
    case Format::kI:
      insn.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
      insn.rs1 = static_cast<std::uint8_t>((word >> 16) & 0xF);
      insn.imm = sign_extend(word, 16);
      break;
    case Format::kU:
      insn.rd = static_cast<std::uint8_t>((word >> 20) & 0xF);
      // JAL offsets are signed; LUI/AUIPC immediates are raw upper bits.
      insn.imm = (op == Opcode::kJal)
                     ? sign_extend(word, 20)
                     : static_cast<std::int32_t>(mask_bits(word, 20));
      break;
    case Format::kB:
    case Format::kS:
      insn.rs1 = static_cast<std::uint8_t>((word >> 20) & 0xF);
      insn.rs2 = static_cast<std::uint8_t>((word >> 16) & 0xF);
      insn.imm = sign_extend(word, 16);
      break;
    case Format::kN:
      insn.imm = static_cast<std::int32_t>(mask_bits(word, 16));
      break;
  }
  return insn;
}

std::string_view gpr_name(unsigned index) {
  static constexpr std::string_view kNames[kNumGpr] = {
      "zero", "a0", "a1", "a2", "a3", "t0", "t1", "t2",
      "t3",   "t4", "s0", "s1", "tp", "sp", "ra", "s2"};
  assert(index < kNumGpr);
  return kNames[index];
}

std::string_view fpr_name(unsigned index) {
  static constexpr std::string_view kNames[kNumFpr] = {
      "f0", "f1", "f2", "f3", "f4", "f5", "f6", "f7",
      "f8", "f9", "f10", "f11", "f12", "f13", "f14", "f15"};
  assert(index < kNumFpr);
  return kNames[index];
}

std::string disassemble(const Insn& insn, GuestAddr pc) {
  const InsnInfo& info = insn_info(insn.op);
  char buf[96];
  const bool fp = info.is_fp;
  auto rd = [&](unsigned i) {
    return fp && insn.op != Opcode::kFcvtwd && insn.op != Opcode::kFlt &&
                   insn.op != Opcode::kFle && insn.op != Opcode::kFeq
               ? fpr_name(i)
               : gpr_name(i);
  };
  switch (info.format) {
    case Format::kR: {
      // Mixed-file ops need per-operand register-file selection.
      std::string_view d = rd(insn.rd);
      std::string_view s1 = fp && insn.op != Opcode::kFcvtdw
                                ? fpr_name(insn.rs1)
                                : gpr_name(insn.rs1);
      if (insn.op == Opcode::kSc) {
        d = gpr_name(insn.rd);
        s1 = gpr_name(insn.rs1);
      }
      std::string_view s2 = fp ? fpr_name(insn.rs2) : gpr_name(insn.rs2);
      std::snprintf(buf, sizeof buf, "%.*s %.*s, %.*s, %.*s",
                    int(info.mnemonic.size()), info.mnemonic.data(),
                    int(d.size()), d.data(), int(s1.size()), s1.data(),
                    int(s2.size()), s2.data());
      break;
    }
    case Format::kI:
      if (info.is_load || insn.op == Opcode::kJalr) {
        std::string_view d = fp ? fpr_name(insn.rd) : gpr_name(insn.rd);
        std::snprintf(buf, sizeof buf, "%.*s %.*s, %d(%.*s)",
                      int(info.mnemonic.size()), info.mnemonic.data(),
                      int(d.size()), d.data(), insn.imm,
                      int(gpr_name(insn.rs1).size()), gpr_name(insn.rs1).data());
      } else {
        std::snprintf(buf, sizeof buf, "%.*s %.*s, %.*s, %d",
                      int(info.mnemonic.size()), info.mnemonic.data(),
                      int(gpr_name(insn.rd).size()), gpr_name(insn.rd).data(),
                      int(gpr_name(insn.rs1).size()), gpr_name(insn.rs1).data(),
                      insn.imm);
      }
      break;
    case Format::kU:
      if (insn.op == Opcode::kJal) {
        const GuestAddr target =
            pc + 4 + static_cast<GuestAddr>(insn.imm) * 4u;
        std::snprintf(buf, sizeof buf, "jal %.*s, 0x%x",
                      int(gpr_name(insn.rd).size()), gpr_name(insn.rd).data(),
                      target);
      } else {
        std::snprintf(buf, sizeof buf, "%.*s %.*s, 0x%x",
                      int(info.mnemonic.size()), info.mnemonic.data(),
                      int(gpr_name(insn.rd).size()), gpr_name(insn.rd).data(),
                      static_cast<std::uint32_t>(insn.imm));
      }
      break;
    case Format::kB: {
      const GuestAddr target = pc + 4 + static_cast<GuestAddr>(insn.imm) * 4u;
      std::snprintf(buf, sizeof buf, "%.*s %.*s, %.*s, 0x%x",
                    int(info.mnemonic.size()), info.mnemonic.data(),
                    int(gpr_name(insn.rs1).size()), gpr_name(insn.rs1).data(),
                    int(gpr_name(insn.rs2).size()), gpr_name(insn.rs2).data(),
                    target);
      break;
    }
    case Format::kS: {
      std::string_view src = fp ? fpr_name(insn.rs2) : gpr_name(insn.rs2);
      std::snprintf(buf, sizeof buf, "%.*s %.*s, %d(%.*s)",
                    int(info.mnemonic.size()), info.mnemonic.data(),
                    int(src.size()), src.data(), insn.imm,
                    int(gpr_name(insn.rs1).size()), gpr_name(insn.rs1).data());
      break;
    }
    case Format::kN:
      std::snprintf(buf, sizeof buf, "%.*s %d", int(info.mnemonic.size()),
                    info.mnemonic.data(), insn.imm);
      break;
  }
  return buf;
}

}  // namespace dqemu::isa
