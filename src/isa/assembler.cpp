#include "isa/assembler.hpp"

#include <bit>
#include <cassert>
#include <cstring>

namespace dqemu::isa {
namespace {

constexpr std::uint32_t align_up(std::uint32_t v, std::uint32_t a) {
  return (v + a - 1) & ~(a - 1);
}

/// Data is placed on the page after the code so that code pages (which
/// every node reads while translating) never false-share with data.
constexpr std::uint32_t kDataAlignment = 4096;

}  // namespace

Assembler::Assembler(GuestAddr code_origin) : code_origin_(code_origin) {
  assert((code_origin % 4) == 0 && "code origin must be word aligned");
}

Assembler::Label Assembler::make_label(std::string name) {
  labels_.push_back(LabelInfo{std::move(name), false, false, 0});
  return Label{static_cast<std::uint32_t>(labels_.size() - 1)};
}

void Assembler::bind(Label label) {
  LabelInfo& info = labels_.at(label.id);
  if (info.bound && first_error_.is_ok()) {
    first_error_ = Status::already_exists("label bound twice: " + info.name);
    return;
  }
  info.bound = true;
  info.in_data = false;
  info.offset = static_cast<std::uint32_t>(code_.size());
}

void Assembler::bind_data(Label label) {
  LabelInfo& info = labels_.at(label.id);
  if (info.bound && first_error_.is_ok()) {
    first_error_ = Status::already_exists("label bound twice: " + info.name);
    return;
  }
  info.bound = true;
  info.in_data = true;
  info.offset = static_cast<std::uint32_t>(data_.size());
}

Assembler::Label Assembler::here(std::string name) {
  Label label = make_label(std::move(name));
  bind(label);
  return label;
}

void Assembler::emit(const Insn& insn) {
  const std::uint32_t word = encode(insn);
  const std::size_t at = code_.size();
  code_.resize(at + 4);
  std::memcpy(code_.data() + at, &word, 4);
}

void Assembler::emit_b(Opcode op, Reg rs1, Reg rs2, Label target) {
  fixups_.push_back(
      Fixup{static_cast<std::uint32_t>(code_.size()), target.id,
            FixupKind::kBranch16});
  emit({op, 0, std::uint8_t(rs1), std::uint8_t(rs2), 0});
}

void Assembler::jal(Reg rd, Label target) {
  fixups_.push_back(Fixup{static_cast<std::uint32_t>(code_.size()), target.id,
                          FixupKind::kJal20});
  emit({Opcode::kJal, std::uint8_t(rd), 0, 0, 0});
}

void Assembler::li(Reg rd, std::int64_t value) {
  const auto v32 = static_cast<std::int32_t>(value);
  if (fits_imm16(value)) {
    addi(rd, kZero, v32);
    return;
  }
  const std::int32_t hi20 =
      static_cast<std::int32_t>((static_cast<std::uint32_t>(v32) >> 12) & 0xFFFFF);
  const std::int32_t lo12 =
      static_cast<std::int32_t>(static_cast<std::uint32_t>(v32) & 0xFFF);
  lui(rd, hi20);
  if (lo12 != 0) ori(rd, rd, lo12);
}

void Assembler::la(Reg rd, Label target) {
  fixups_.push_back(Fixup{static_cast<std::uint32_t>(code_.size()), target.id,
                          FixupKind::kLuiOriPair});
  lui(rd, 0);
  ori(rd, rd, 0);
}

void Assembler::la(Reg rd, GuestAddr addr) {
  lui(rd, static_cast<std::int32_t>((addr >> 12) & 0xFFFFF));
  ori(rd, rd, static_cast<std::int32_t>(addr & 0xFFF));
}

void Assembler::fli(FReg fd, double value, Reg scratch) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  auto it = literal_pool_.find(bits);
  Label lit;
  if (it == literal_pool_.end()) {
    lit = make_label();
    // Pool entries are appended to the data stream immediately; 8-byte
    // aligned so FLD is naturally aligned.
    d_align(8);
    bind_data(lit);
    d_double(value);
    literal_pool_.emplace(bits, lit);
  } else {
    lit = it->second;
  }
  la(scratch, lit);
  fld(fd, scratch, 0);
}

void Assembler::d_align(std::uint32_t alignment) {
  assert(alignment != 0 && (alignment & (alignment - 1)) == 0);
  const auto size = static_cast<std::uint32_t>(data_.size());
  data_.resize(align_up(size, alignment), 0);
}

void Assembler::d_byte(std::uint8_t v) { data_.push_back(v); }

void Assembler::d_half(std::uint16_t v) {
  const std::size_t at = data_.size();
  data_.resize(at + 2);
  std::memcpy(data_.data() + at, &v, 2);
}

void Assembler::d_word(std::uint32_t v) {
  const std::size_t at = data_.size();
  data_.resize(at + 4);
  std::memcpy(data_.data() + at, &v, 4);
}

void Assembler::d_double(double v) {
  const std::size_t at = data_.size();
  data_.resize(at + 8);
  std::memcpy(data_.data() + at, &v, 8);
}

void Assembler::d_space(std::uint32_t n) { data_.resize(data_.size() + n, 0); }

void Assembler::d_bytes(std::span<const std::uint8_t> bytes) {
  data_.insert(data_.end(), bytes.begin(), bytes.end());
}

void Assembler::d_asciz(std::string_view s) {
  data_.insert(data_.end(), s.begin(), s.end());
  data_.push_back(0);
}

void Assembler::set_entry(Label label) { entry_label_ = label.id; }

void Assembler::patch_word(std::uint32_t code_offset, std::uint32_t word) {
  assert(code_offset + 4 <= code_.size());
  std::memcpy(code_.data() + code_offset, &word, 4);
}

std::uint32_t Assembler::read_word(std::uint32_t code_offset) const {
  assert(code_offset + 4 <= code_.size());
  std::uint32_t word = 0;
  std::memcpy(&word, code_.data() + code_offset, 4);
  return word;
}

Result<Program> Assembler::finalize() {
  if (!first_error_.is_ok()) return first_error_;

  const GuestAddr data_origin = align_up(
      code_origin_ + static_cast<std::uint32_t>(code_.size()), kDataAlignment);

  auto label_addr = [&](std::uint32_t id) -> GuestAddr {
    const LabelInfo& info = labels_[id];
    return info.in_data ? data_origin + info.offset
                        : code_origin_ + info.offset;
  };

  for (std::uint32_t id = 0; id < labels_.size(); ++id) {
    if (!labels_[id].bound) {
      // Only labels that are actually referenced (by a fixup or as entry)
      // must be bound.
      for (const Fixup& fixup : fixups_) {
        if (fixup.label_id == id) {
          return Status::failed_precondition(
              "unbound label referenced: '" + labels_[id].name + "'");
        }
      }
      if (entry_label_ == id) {
        return Status::failed_precondition("entry label is unbound");
      }
    }
  }

  for (const Fixup& fixup : fixups_) {
    const GuestAddr target = label_addr(fixup.label_id);
    const GuestAddr insn_addr = code_origin_ + fixup.code_offset;
    switch (fixup.kind) {
      case FixupKind::kBranch16:
      case FixupKind::kJal20: {
        if (labels_[fixup.label_id].in_data) {
          return Status::invalid_argument("branch to a data label");
        }
        const std::int64_t delta =
            static_cast<std::int64_t>(target) - (insn_addr + 4);
        assert((delta % 4) == 0);
        const std::int64_t words = delta / 4;
        const bool fits = fixup.kind == FixupKind::kBranch16
                              ? fits_imm16(words)
                              : fits_imm20(words);
        if (!fits) {
          return Status::out_of_range("branch offset out of range to '" +
                                      labels_[fixup.label_id].name + "'");
        }
        auto insn = decode(read_word(fixup.code_offset));
        assert(insn.has_value());
        insn->imm = static_cast<std::int32_t>(words);
        patch_word(fixup.code_offset, encode(*insn));
        break;
      }
      case FixupKind::kLuiOriPair: {
        auto lui_insn = decode(read_word(fixup.code_offset));
        auto ori_insn = decode(read_word(fixup.code_offset + 4));
        assert(lui_insn && lui_insn->op == Opcode::kLui);
        assert(ori_insn && ori_insn->op == Opcode::kOri);
        lui_insn->imm = static_cast<std::int32_t>((target >> 12) & 0xFFFFF);
        ori_insn->imm = static_cast<std::int32_t>(target & 0xFFF);
        patch_word(fixup.code_offset, encode(*lui_insn));
        patch_word(fixup.code_offset + 4, encode(*ori_insn));
        break;
      }
    }
  }

  Program program;
  program.sections.push_back(Section{code_origin_, code_});
  if (!data_.empty()) {
    program.sections.push_back(Section{data_origin, data_});
  }
  program.entry = entry_label_ == UINT32_MAX ? code_origin_
                                             : label_addr(entry_label_);
  program.brk_start = align_up(
      data_origin + static_cast<std::uint32_t>(data_.size()), kDataAlignment);
  for (std::uint32_t id = 0; id < labels_.size(); ++id) {
    const LabelInfo& info = labels_[id];
    if (info.bound && !info.name.empty()) {
      program.symbols[info.name] = label_addr(id);
    }
  }
  return program;
}

}  // namespace dqemu::isa
