// GA32 — the guest instruction set architecture.
//
// GA32 is a small 32-bit RISC ISA standing in for the paper's ARM guest:
// fixed 4-byte encodings, 16 integer registers (r0 hardwired to zero),
// 16 double-precision FP registers, LL/SC atomics (so DQEMU's LL/SC-via-
// CAS hash-table emulation from section 4.4 is exercised), FENCE, a
// SYSCALL instruction with an immediate number, and a HINT no-op whose
// operand carries the locality group id used by section 5.3's scheduler.
//
// Encoding formats (bit 31 is the MSB):
//   R:  op[31:24] rd[23:20] rs1[19:16] rs2[15:12] 0[11:0]
//   I:  op[31:24] rd[23:20] rs1[19:16] imm16[15:0]      (signed)
//   U:  op[31:24] rd[23:20] imm20[19:0]                 (LUI/AUIPC/JAL)
//   B:  op[31:24] rs1[23:20] rs2[19:16] imm16[15:0]     (signed word offset)
//   S:  op[31:24] rs1[23:20] rs2[19:16] imm16[15:0]     (stores: mem[rs1+imm]=rs2)
//   N:  op[31:24] imm16[15:0]                           (SYSCALL/HINT/FENCE)
// Branch/JAL offsets are in 4-byte words relative to the *next* pc.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.hpp"

namespace dqemu::isa {

/// Number of integer / FP registers.
inline constexpr unsigned kNumGpr = 16;
inline constexpr unsigned kNumFpr = 16;

/// ABI register assignments.
enum Reg : std::uint8_t {
  kZero = 0,            ///< hardwired zero
  kA0 = 1, kA1 = 2, kA2 = 3, kA3 = 4,   ///< arguments / a0 = return value
  kT0 = 5, kT1 = 6, kT2 = 7, kT3 = 8, kT4 = 9,  ///< caller-saved temps
  kS0 = 10, kS1 = 11,   ///< callee-saved
  kTp = 12,             ///< thread pointer (set at thread start)
  kSp = 13,             ///< stack pointer
  kRa = 14,             ///< return address (link register)
  kS2 = 15,             ///< callee-saved
};

/// Instruction encoding format.
enum class Format : std::uint8_t { kR, kI, kU, kB, kS, kN };

/// Opcodes. Values are the wire encoding and must stay stable.
enum class Opcode : std::uint8_t {
  // R-type integer ALU.
  kAdd = 0x01, kSub, kMul, kDiv, kDivu, kRem, kRemu,
  kAnd, kOr, kXor, kSll, kSrl, kSra, kSlt, kSltu,
  // I-type integer ALU.
  kAddi = 0x10, kAndi, kOri, kXori, kSlli, kSrli, kSrai, kSlti, kSltiu,
  // U-type.
  kLui = 0x1A, kAuipc,
  // Loads (I-format: rd = mem[rs1 + imm]).
  kLb = 0x20, kLbu, kLh, kLhu, kLw,
  // Stores (S-format: mem[rs1 + imm] = rs2).
  kSb = 0x28, kSh, kSw,
  // Branches (B-format).
  kBeq = 0x30, kBne, kBlt, kBge, kBltu, kBgeu,
  // Jumps.
  kJal = 0x38,   ///< U-format: rd = pc+4; pc += imm20*4
  kJalr = 0x39,  ///< I-format: rd = pc+4; pc = (rs1 + imm) & ~3
  // Atomics & ordering.
  kLl = 0x40,    ///< I-format: rd = mem[rs1]; open monitor (imm ignored)
  kSc = 0x41,    ///< R-format: mem[rs1] = rs2; rd = 0 ok / 1 fail
  kFence = 0x42, ///< N-format: full barrier
  // System.
  kSyscall = 0x48,  ///< N-format: imm16 = syscall number; args in a0..a3
  kHint = 0x49,     ///< N-format: no-op; imm16 = locality group id (5.3)
  // FP loads/stores (same formats, FP register in rd / rs2 slot).
  kFld = 0x50, kFsd = 0x51,
  // FP arithmetic (R-format on FP registers).
  kFadd = 0x58, kFsub, kFmul, kFdiv, kFmin, kFmax,
  kFneg = 0x5E,  ///< fd = -fs1
  kFabs = 0x5F,
  kFmov = 0x60,  ///< fd = fs1
  // FP <-> int conversion and moves (mixed register files).
  kFcvtdw = 0x61,  ///< fd = (double)(int32)rs1
  kFcvtwd = 0x62,  ///< rd = (int32)trunc(fs1)
  // FP comparisons (integer rd).
  kFlt = 0x63, kFle = 0x64, kFeq = 0x65,
  // FP "libm-class" ops: stand-ins for statically linked math routines.
  kFsqrt = 0x68, kFexp, kFlog, kFpow, kFerf, kFsin, kFcos,
};

/// Decoded instruction.
struct Insn {
  Opcode op = Opcode::kAdd;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;  ///< sign-extended; imm20 for U-format

  friend bool operator==(const Insn&, const Insn&) = default;
};

/// Static properties of an opcode, driving the assembler, the DBT's block
/// former and the cost model.
struct InsnInfo {
  std::string_view mnemonic;
  Format format = Format::kR;
  bool is_load = false;
  bool is_store = false;
  bool ends_block = false;    ///< branch/jump/syscall: terminates a TB
  bool is_fp = false;         ///< touches the FP register file
  bool is_fp_special = false; ///< libm-class cost
  /// Memory access width in bytes for loads/stores (0 otherwise).
  std::uint8_t mem_bytes = 0;
};

/// Metadata for `op`; invalid opcodes return a null mnemonic.
[[nodiscard]] const InsnInfo& insn_info(Opcode op);

/// True if the byte is an assigned opcode value.
[[nodiscard]] bool is_valid_opcode(std::uint8_t raw);

/// Encodes to the 4-byte wire format. Immediates out of range for the
/// format are a programming error (asserted); the assembler range-checks
/// user input before calling this.
[[nodiscard]] std::uint32_t encode(const Insn& insn);

/// Decodes a wire word; nullopt for invalid opcodes.
[[nodiscard]] std::optional<Insn> decode(std::uint32_t word);

/// Register names for the disassembler ("zero", "a0", ... "sp").
[[nodiscard]] std::string_view gpr_name(unsigned index);
[[nodiscard]] std::string_view fpr_name(unsigned index);

/// Human-readable rendering, e.g. "addi sp, sp, -16".
/// `pc` resolves branch targets to absolute addresses.
[[nodiscard]] std::string disassemble(const Insn& insn, GuestAddr pc = 0);

/// Immediate range checks per format.
[[nodiscard]] constexpr bool fits_imm16(std::int64_t v) {
  return v >= -32768 && v <= 32767;
}
[[nodiscard]] constexpr bool fits_imm20(std::int64_t v) {
  return v >= -(1 << 19) && v < (1 << 19);
}

}  // namespace dqemu::isa
