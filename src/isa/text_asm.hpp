// Text front-end for the GA32 assembler.
//
// A classic two-section assembly dialect used by the examples and tests:
//
//     ; comment            # comment            // comment
//     .text                ; switch to the code stream (default)
//             li   a0, 42
//             la   a1, greeting
//     loop:   addi a0, a0, -1
//             bne  a0, zero, loop
//             syscall 1            ; exit(a0)
//     .data
//     greeting: .asciz "hello"
//     table:    .word 1, 2, 3
//               .space 64
//               .align 8
//     pi:       .double 3.141592653589793
//     .entry main          ; optional; defaults to the first instruction
//
// Registers accept ABI names (zero, a0..a3, t0..t4, s0..s2, tp, sp, ra),
// raw names (r0..r15) and FP names (f0..f15). Loads/stores accept both
// "lw a0, 4(sp)" and "lw a0, sp, 4". Immediates are decimal or 0x hex.
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace dqemu::isa {

/// Assembles `source` into a program image. Errors carry line numbers.
[[nodiscard]] Result<Program> assemble_text(
    std::string_view source, GuestAddr code_origin = kDefaultCodeOrigin);

}  // namespace dqemu::isa
