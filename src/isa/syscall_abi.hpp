// Guest syscall ABI.
//
// GA32's SYSCALL instruction carries the call number as an immediate;
// arguments are in a0..a3 and the result returns in a0 (negative errno on
// failure, Linux style). Calls 1..19 are the set the workloads need — the
// same count the paper reports implementing (section 4.3); 20..21 are the
// serving-plane extension (DESIGN.md §14).
#pragma once

#include <cstdint>

namespace dqemu::isa {

enum class Sys : std::uint16_t {
  kExit = 1,       ///< a0 = status. Terminates the calling guest thread.
  kWrite = 2,      ///< a0 = fd, a1 = buf, a2 = len -> bytes written
  kRead = 3,       ///< a0 = fd, a1 = buf, a2 = len -> bytes read
  kOpen = 4,       ///< a0 = path (asciz), a1 = flags -> fd
  kClose = 5,      ///< a0 = fd
  kLseek = 6,      ///< a0 = fd, a1 = offset, a2 = whence -> new position
  kBrk = 7,        ///< a0 = new break or 0 to query -> current break
  kMmap = 8,       ///< a0 = length -> address of anonymous RW mapping
  kClone = 9,      ///< a0 = flags, a1 = child sp, a2 = ctid addr
                   ///< -> parent: child tid, child: 0. On child exit the
                   ///< kernel stores 0 to *ctid and futex-wakes it.
  kFutex = 10,     ///< a0 = addr, a1 = op (0 wait / 1 wake), a2 = val
  kGettid = 11,    ///< -> calling guest thread id
  kGetpid = 12,    ///< -> guest process id (always 1)
  kYield = 13,     ///< relinquish the core
  kClockGettime = 14,  ///< a0 = clock id, a1 = {u32 sec, u32 nsec} out ptr
  kExitGroup = 15, ///< a0 = status. Terminates the whole guest process.
  kUname = 16,     ///< a0 = 64-byte buffer -> "DQEMU" banner
  kNanosleep = 17, ///< a0 = nanoseconds (32-bit)
  kMunmap = 18,    ///< a0 = addr, a1 = length (accounting only)
  kGetcpu = 19,    ///< -> node id the thread currently runs on

  // Serving-plane calls (DESIGN.md §14) — beyond the paper's 19; only
  // guests built by workloads::serve_pool use them, and they return
  // -ENOSYS unless the cluster runs with ServeConfig::enabled.
  kServeGet = 20,  ///< block for the next request -> work descriptor
                   ///< (class << 28 | work units), or -1 for "no more work"
  kServeDone = 21, ///< a0 = result checksum of the request just served
};

/// Futex operations for Sys::kFutex.
inline constexpr std::uint32_t kFutexWait = 0;
inline constexpr std::uint32_t kFutexWake = 1;

/// Open flags (subset).
inline constexpr std::uint32_t kOpenRead = 0;
inline constexpr std::uint32_t kOpenWrite = 1;
inline constexpr std::uint32_t kOpenCreate = 0x40;

/// lseek whence values.
inline constexpr std::uint32_t kSeekSet = 0;
inline constexpr std::uint32_t kSeekCur = 1;
inline constexpr std::uint32_t kSeekEnd = 2;

/// Well-known file descriptors.
inline constexpr std::uint32_t kStdoutFd = 1;
inline constexpr std::uint32_t kStderrFd = 2;

/// Linux-style errno values returned as -errno in a0.
inline constexpr std::int32_t kEAGAIN = 11;
inline constexpr std::int32_t kEBADF = 9;
inline constexpr std::int32_t kEINVAL = 22;
inline constexpr std::int32_t kENOENT = 2;
inline constexpr std::int32_t kENOMEM = 12;
inline constexpr std::int32_t kENOSYS = 38;

}  // namespace dqemu::isa
