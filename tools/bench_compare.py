#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the bench/ binaries.

Usage: tools/bench_compare.py [--latency-tol PCT] [--mips-floor PCT] \
           OLD.json NEW.json

Prints per-scenario guest-MIPS ratios (new/old) and flags virtual-time
drift: wall-clock numbers legitimately differ across machines and runs,
but `guest_insns` and `sim_seconds` are virtual-time observables and must
match exactly between two runs of the same bench configuration. Latency
benches (ablation_serving) additionally carry throughput and latency
quantiles; those are derived from virtual time and integer-nanosecond
histograms, so they too must match exactly — unless --latency-tol loosens
them to a relative percentage for comparisons across code revisions where
bit-equality is not expected.

--mips-floor PCT turns the comparison into a host-performance gate: fail
when any scenario's new guest MIPS drops below PCT% of the old value
(e.g. --mips-floor 50 tolerates a 2x slowdown but catches an
order-of-magnitude hot-path regression). Without it, exits non-zero only
on malformed input or virtual-time drift — never on a speed difference,
so it is safe as an informational CI step across hardware.
"""

import json
import sys

# Virtual-time exact observables present in every bench.
EXACT_FIELDS = ("guest_insns", "sim_seconds")
# Latency-bench observables: exact by default, tolerance-checked with
# --latency-tol. Only compared when a scenario carries them.
LATENCY_FIELDS = ("throughput_rps", "p50_ms", "p99_ms", "p999_ms", "max_ms")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "scenarios" not in doc:
        sys.exit(f"{path}: not a bench file (no 'scenarios' key)")
    return doc


def key(scenario):
    return (scenario["name"], scenario.get("fastpath"),
            scenario.get("superblocks"))


def onoff(value):
    return {True: "on", False: "off", None: "-"}[value]


def latency_drifted(old_value, new_value, tol_pct):
    if old_value == new_value:
        return False
    if tol_pct is None:
        return True
    bound = abs(old_value) * tol_pct / 100.0
    return abs(new_value - old_value) > bound


def float_arg(argv, flag):
    if flag not in argv:
        return None
    at = argv.index(flag)
    try:
        value = float(argv[at + 1])
    except (IndexError, ValueError):
        sys.exit(f"{flag} needs a numeric percentage")
    del argv[at:at + 2]
    return value


def main():
    argv = sys.argv[1:]
    tol_pct = float_arg(argv, "--latency-tol")
    floor_pct = float_arg(argv, "--mips-floor")
    if len(argv) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    old_doc, new_doc = load(argv[0]), load(argv[1])
    old = {key(s): s for s in old_doc["scenarios"]}
    new = {key(s): s for s in new_doc["scenarios"]}
    comparable = old_doc.get("quick") == new_doc.get("quick")
    if not comparable:
        print("note: quick-mode mismatch; virtual-time checks skipped")

    drift = False
    too_slow = []
    print(f"{'scenario':<20} {'fastpath':>8} {'sb':>4} {'old MIPS':>10} "
          f"{'new MIPS':>10} {'ratio':>7}")
    for k in sorted(old.keys() | new.keys(), key=str):
        name, fastpath, superblocks = k
        fp, sb = onoff(fastpath), onoff(superblocks)
        if k not in old or k not in new:
            where = "old" if k in old else "new"
            print(f"{name:<20} {fp:>8} {sb:>4}   (only in {where})")
            continue
        o, n = old[k], new[k]
        ratio = n["guest_mips"] / o["guest_mips"] if o["guest_mips"] else 0.0
        print(f"{name:<20} {fp:>8} {sb:>4} {o['guest_mips']:>10.2f} "
              f"{n['guest_mips']:>10.2f} {ratio:>6.2f}x")
        if floor_pct is not None and ratio * 100.0 < floor_pct:
            too_slow.append(f"{name} (fastpath {fp}, sb {sb}): "
                            f"{ratio * 100.0:.0f}% < {floor_pct:g}%")
        if comparable:
            for field in EXACT_FIELDS:
                if o.get(field) != n.get(field):
                    drift = True
                    print(f"  !! {field} drifted: "
                          f"{o.get(field)} -> {n.get(field)}")
            for field in LATENCY_FIELDS:
                if field not in o and field not in n:
                    continue
                if field not in o or field not in n:
                    drift = True
                    print(f"  !! {field} present on only one side")
                    continue
                if latency_drifted(o[field], n[field], tol_pct):
                    drift = True
                    within = ("" if tol_pct is None
                              else f" (tol {tol_pct:g}%)")
                    print(f"  !! {field} drifted{within}: "
                          f"{o[field]} -> {n[field]}")
    if drift:
        sys.exit("virtual-time results differ: the runs are not equivalent")
    if too_slow:
        sys.exit("guest MIPS below --mips-floor:\n  " + "\n  ".join(too_slow))


if __name__ == "__main__":
    main()
