#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the bench/ binaries.

Usage: tools/bench_compare.py OLD.json NEW.json

Prints per-scenario guest-MIPS ratios (new/old) and flags virtual-time
drift: wall-clock numbers legitimately differ across machines and runs,
but `guest_insns` and `sim_seconds` are virtual-time observables and must
match exactly between two runs of the same bench configuration. Exits
non-zero only on malformed input or virtual-time drift — never on a speed
difference, so it is safe as an informational CI step across hardware.
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "scenarios" not in doc:
        sys.exit(f"{path}: not a bench file (no 'scenarios' key)")
    return doc


def key(scenario):
    return (scenario["name"], scenario.get("fastpath"))


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[2])
    old_doc, new_doc = load(sys.argv[1]), load(sys.argv[2])
    old = {key(s): s for s in old_doc["scenarios"]}
    new = {key(s): s for s in new_doc["scenarios"]}
    comparable = old_doc.get("quick") == new_doc.get("quick")
    if not comparable:
        print("note: quick-mode mismatch; virtual-time checks skipped")

    drift = False
    print(f"{'scenario':<20} {'fastpath':>8} {'old MIPS':>10} "
          f"{'new MIPS':>10} {'ratio':>7}")
    for k in sorted(old.keys() | new.keys(), key=str):
        name, fastpath = k
        fp = {True: "on", False: "off", None: "-"}[fastpath]
        if k not in old or k not in new:
            where = "old" if k in old else "new"
            print(f"{name:<20} {fp:>8}   (only in {where})")
            continue
        o, n = old[k], new[k]
        ratio = n["guest_mips"] / o["guest_mips"] if o["guest_mips"] else 0.0
        print(f"{name:<20} {fp:>8} {o['guest_mips']:>10.2f} "
              f"{n['guest_mips']:>10.2f} {ratio:>6.2f}x")
        if comparable:
            for field in ("guest_insns", "sim_seconds"):
                if o.get(field) != n.get(field):
                    drift = True
                    print(f"  !! {field} drifted: "
                          f"{o.get(field)} -> {n.get(field)}")
    if drift:
        sys.exit("virtual-time results differ: the runs are not equivalent")


if __name__ == "__main__":
    main()
