#!/usr/bin/env python3
"""Diff two BENCH_*.json files produced by the bench/ binaries.

Usage: tools/bench_compare.py [--latency-tol PCT] [--mips-floor PCT] \
           OLD.json NEW.json
       tools/bench_compare.py --gate-parallel FILE.json [FILE2.json]

Prints per-scenario guest-MIPS ratios (new/old) and flags virtual-time
drift: wall-clock numbers legitimately differ across machines and runs,
but `guest_insns` and `sim_seconds` are virtual-time observables and must
match exactly between two runs of the same bench configuration. Latency
benches (ablation_serving) additionally carry throughput and latency
quantiles; those are derived from virtual time and integer-nanosecond
histograms, so they too must match exactly — unless --latency-tol loosens
them to a relative percentage for comparisons across code revisions where
bit-equality is not expected.

--mips-floor PCT turns the comparison into a host-performance gate: fail
when any scenario's new guest MIPS drops below PCT% of the old value
(e.g. --mips-floor 50 tolerates a 2x slowdown but catches an
order-of-magnitude hot-path regression). Without it, exits non-zero only
on malformed input or virtual-time drift — never on a speed difference,
so it is safe as an informational CI step across hardware.

--gate-parallel checks the parallel-scheduler contract WITHIN each given
file (BENCH_parallel.json): scenario rows carrying "group"/"host_threads"
are grouped, every virtual-time observable must be byte-identical to the
group's host_threads=1 baseline, and the wall-clock speedup
(baseline wall / row wall) must clear the per-group "speedup_floor" the
bench recorded. Floors tolerate host jitter by construction: the bench
writes them with margin and waives them (0.0) on hosts without enough
cores. With two files, the normal two-run comparison also applies.
"""

import json
import sys

# Virtual-time exact observables present in every bench.
EXACT_FIELDS = ("guest_insns", "sim_seconds")
# Latency-bench observables: exact by default, tolerance-checked with
# --latency-tol. Only compared when a scenario carries them.
LATENCY_FIELDS = ("throughput_rps", "p50_ms", "p99_ms", "p999_ms", "max_ms")


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if "scenarios" not in doc:
        sys.exit(f"{path}: not a bench file (no 'scenarios' key)")
    return doc


def key(scenario):
    return (scenario["name"], scenario.get("fastpath"),
            scenario.get("superblocks"))


def onoff(value):
    return {True: "on", False: "off", None: "-"}[value]


def latency_drifted(old_value, new_value, tol_pct):
    if old_value == new_value:
        return False
    if tol_pct is None:
        return True
    bound = abs(old_value) * tol_pct / 100.0
    return abs(new_value - old_value) > bound


def gate_parallel(path, doc):
    """Within-file check of the parallel scheduler's contract.

    Returns a list of problem strings (empty = pass). Identity failures
    compare every virtual-time observable against the group's
    host_threads=1 row; speedup failures compare wall-clock ratios against
    the floors the bench itself recorded (0.0/absent = waived).
    """
    groups = {}
    for s in doc["scenarios"]:
        if "group" in s and "host_threads" in s:
            groups.setdefault(s["group"], {})[s["host_threads"]] = s
    if not groups:
        return [f"{path}: no scenarios carry group/host_threads rows"]
    floors = doc.get("speedup_floor", {})
    problems = []
    print(f"{'group':<22} {'ht':>3} {'wall s':>10} {'speedup':>8} "
          f"{'floor':>6} {'virtual':>8}")
    for name in sorted(groups):
        by_threads = groups[name]
        base = by_threads.get(1)
        if base is None:
            problems.append(f"{name}: no host_threads=1 baseline row")
            continue
        for threads in sorted(by_threads):
            row = by_threads[threads]
            identical = all(
                base.get(field) == row.get(field)
                for field in EXACT_FIELDS + LATENCY_FIELDS)
            speedup = (base["wall_seconds"] / row["wall_seconds"]
                       if row["wall_seconds"] else 0.0)
            floor = floors.get(name, {}).get(f"ht{threads}", 0.0)
            print(f"{name:<22} {threads:>3} {row['wall_seconds']:>10.6f} "
                  f"{speedup:>7.2f}x {floor:>6.2f} "
                  f"{'same' if identical else 'DRIFT':>8}")
            if not identical:
                fields = [f for f in EXACT_FIELDS + LATENCY_FIELDS
                          if base.get(f) != row.get(f)]
                problems.append(
                    f"{name} ht{threads}: virtual time differs from the"
                    f" serial run in {', '.join(fields)}")
            if floor and speedup < floor:
                problems.append(
                    f"{name} ht{threads}: wall-clock speedup {speedup:.2f}x"
                    f" below the recorded floor {floor:g}x")
    return problems


def float_arg(argv, flag):
    if flag not in argv:
        return None
    at = argv.index(flag)
    try:
        value = float(argv[at + 1])
    except (IndexError, ValueError):
        sys.exit(f"{flag} needs a numeric percentage")
    del argv[at:at + 2]
    return value


def main():
    argv = sys.argv[1:]
    tol_pct = float_arg(argv, "--latency-tol")
    floor_pct = float_arg(argv, "--mips-floor")
    parallel = "--gate-parallel" in argv
    if parallel:
        argv.remove("--gate-parallel")
        if len(argv) not in (1, 2):
            sys.exit("--gate-parallel needs one or two bench files")
        problems = []
        for path in argv:
            problems += gate_parallel(path, load(path))
        if problems:
            sys.exit("parallel-scheduler contract violated:\n  " +
                     "\n  ".join(problems))
        if len(argv) == 1:
            return
        # Fall through: two files also get the normal two-run comparison.
    if len(argv) != 2:
        sys.exit(__doc__.strip().splitlines()[2].strip())
    old_doc, new_doc = load(argv[0]), load(argv[1])
    old = {key(s): s for s in old_doc["scenarios"]}
    new = {key(s): s for s in new_doc["scenarios"]}
    comparable = old_doc.get("quick") == new_doc.get("quick")
    if not comparable:
        print("note: quick-mode mismatch; virtual-time checks skipped")

    drift = False
    too_slow = []
    print(f"{'scenario':<20} {'fastpath':>8} {'sb':>4} {'old MIPS':>10} "
          f"{'new MIPS':>10} {'ratio':>7}")
    for k in sorted(old.keys() | new.keys(), key=str):
        name, fastpath, superblocks = k
        fp, sb = onoff(fastpath), onoff(superblocks)
        if k not in old or k not in new:
            where = "old" if k in old else "new"
            print(f"{name:<20} {fp:>8} {sb:>4}   (only in {where})")
            continue
        o, n = old[k], new[k]
        ratio = n["guest_mips"] / o["guest_mips"] if o["guest_mips"] else 0.0
        print(f"{name:<20} {fp:>8} {sb:>4} {o['guest_mips']:>10.2f} "
              f"{n['guest_mips']:>10.2f} {ratio:>6.2f}x")
        if floor_pct is not None and ratio * 100.0 < floor_pct:
            too_slow.append(f"{name} (fastpath {fp}, sb {sb}): "
                            f"{ratio * 100.0:.0f}% < {floor_pct:g}%")
        if comparable:
            for field in EXACT_FIELDS:
                if o.get(field) != n.get(field):
                    drift = True
                    print(f"  !! {field} drifted: "
                          f"{o.get(field)} -> {n.get(field)}")
            for field in LATENCY_FIELDS:
                if field not in o and field not in n:
                    continue
                if field not in o or field not in n:
                    drift = True
                    print(f"  !! {field} present on only one side")
                    continue
                if latency_drifted(o[field], n[field], tol_pct):
                    drift = True
                    within = ("" if tol_pct is None
                              else f" (tol {tol_pct:g}%)")
                    print(f"  !! {field} drifted{within}: "
                          f"{o[field]} -> {n[field]}")
    if drift:
        sys.exit("virtual-time results differ: the runs are not equivalent")
    if too_slow:
        sys.exit("guest MIPS below --mips-floor:\n  " + "\n  ".join(too_slow))


if __name__ == "__main__":
    main()
