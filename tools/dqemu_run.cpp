// dqemu_run — command-line driver: assemble a GA32 source file and run it
// on a simulated DQEMU cluster.
//
//   dqemu_run prog.s [options]
//
//   --nodes N        slave nodes (default 2); 0 = QEMU single-node baseline
//   --cores N        cores per node (default 4)
//   --forwarding     enable data forwarding (paper 5.2)
//   --splitting      enable page splitting (paper 5.1)
//   --dsm-diff       diff-encoded page transfers (DESIGN.md §12)
//   --hier-locking   hierarchical distributed locking (DESIGN.md §11)
//   --hint-sched     hint-based locality-aware scheduling (paper 5.3)
//   --quantum N      instructions per scheduling slice (default 20000)
//   --rtt-us N       network round-trip time in microseconds (default 55)
//   --gbps X         network bandwidth in Gbit/s (default 1.0)
//   --faults         deterministic fault injection + reliable delivery
//                    (DESIGN.md §13)
//   --fault-seed N   seed of the fault decision stream (default 1)
//   --drop-pct X     per-transmission drop probability, percent (default 0;
//                    implies --faults when > 0)
//   --stats          dump all simulator counters after the run
//   --breakdown      print per-thread execute/pagefault/syscall shares
//   --trace FILE     write a Chrome trace_event JSON (load in Perfetto /
//                    chrome://tracing); FILE ending in .txt gets the
//                    compact text dump instead
//   --trace-categories LIST
//                    comma-separated subset of sim,core,net,dsm,sys,
//                    counter,queue (or "all" / "default")
//   --verbose        debug-level protocol logging
//
// Example:
//   ./build/tools/dqemu_run examples/guest/hello.s --nodes 4 --stats
//   ./build/tools/dqemu_run examples/guest/pi.s --trace out.json
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/log.hpp"
#include "core/cluster.hpp"
#include "isa/text_asm.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"

using namespace dqemu;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <program.s> [--nodes N] [--cores N] [--forwarding]"
               " [--splitting]\n               [--dsm-diff] [--hier-locking]"
               " [--hint-sched] [--quantum N] [--rtt-us N]\n               "
               "[--gbps X] [--faults] [--fault-seed N] [--drop-pct X]"
               " [--stats]\n               [--breakdown] [--trace FILE]"
               " [--trace-categories LIST] [--verbose]\n",
               argv0);
}

bool parse_u32(const char* text, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const char* source_path = nullptr;
  ClusterConfig config;
  config.slave_nodes = 2;
  bool dump_stats = false;
  bool breakdown = false;
  const char* trace_path = nullptr;
  trace::TraceConfig trace_config;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto next_value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--nodes") == 0) {
      std::uint32_t n = 0;
      if (const char* v = next_value(); v == nullptr || !parse_u32(v, &n)) {
        usage(argv[0]);
        return 2;
      }
      if (n == 0) {
        config.single_node_baseline = true;
        config.slave_nodes = 0;
      } else {
        config.slave_nodes = n;
      }
    } else if (std::strcmp(arg, "--cores") == 0) {
      const char* v = next_value();
      if (v == nullptr || !parse_u32(v, &config.machine.cores_per_node)) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(arg, "--quantum") == 0) {
      const char* v = next_value();
      if (v == nullptr || !parse_u32(v, &config.dbt.quantum_insns)) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(arg, "--rtt-us") == 0) {
      std::uint32_t rtt = 0;
      if (const char* v = next_value(); v == nullptr || !parse_u32(v, &rtt)) {
        usage(argv[0]);
        return 2;
      }
      config.net.one_way_latency = rtt * time_literals::kUs / 2;
    } else if (std::strcmp(arg, "--gbps") == 0) {
      const char* v = next_value();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      config.net.bandwidth_gbps = std::strtod(v, nullptr);
    } else if (std::strcmp(arg, "--forwarding") == 0) {
      config.dsm.enable_forwarding = true;
    } else if (std::strcmp(arg, "--splitting") == 0) {
      config.dsm.enable_splitting = true;
    } else if (std::strcmp(arg, "--dsm-diff") == 0) {
      config.dsm.enable_diff_transfers = true;
    } else if (std::strcmp(arg, "--hint-sched") == 0) {
      config.sched.policy = SchedPolicy::kHintLocality;
    } else if (std::strcmp(arg, "--hier-locking") == 0) {
      config.sys.enable_hierarchical_locking = true;
    } else if (std::strcmp(arg, "--faults") == 0) {
      config.faults.enabled = true;
    } else if (std::strcmp(arg, "--fault-seed") == 0) {
      std::uint32_t seed = 0;
      if (const char* v = next_value(); v == nullptr || !parse_u32(v, &seed)) {
        usage(argv[0]);
        return 2;
      }
      config.faults.seed = seed;
    } else if (std::strcmp(arg, "--drop-pct") == 0) {
      const char* v = next_value();
      if (v == nullptr) {
        usage(argv[0]);
        return 2;
      }
      config.faults.drop_pct = std::strtod(v, nullptr);
      if (config.faults.drop_pct > 0.0) config.faults.enabled = true;
    } else if (std::strcmp(arg, "--stats") == 0) {
      dump_stats = true;
    } else if (std::strcmp(arg, "--breakdown") == 0) {
      breakdown = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path = next_value();
      if (trace_path == nullptr) {
        usage(argv[0]);
        return 2;
      }
    } else if (std::strcmp(arg, "--trace-categories") == 0) {
      const char* v = next_value();
      const auto mask =
          v != nullptr ? trace::parse_categories(v) : std::nullopt;
      if (!mask.has_value()) {
        std::fprintf(stderr,
                     "bad --trace-categories (want e.g. net,dsm,sys or"
                     " all/default)\n");
        return 2;
      }
      trace_config.categories = *mask;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      set_log_level(LogLevel::kDebug);
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
      return 2;
    } else if (source_path == nullptr) {
      source_path = arg;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (source_path == nullptr) {
    usage(argv[0]);
    return 2;
  }
  if (const Status valid = config.validate(); !valid.is_ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", valid.to_string().c_str());
    return 2;
  }

  std::ifstream in(source_path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", source_path);
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();

  auto program = isa::assemble_text(text.str());
  if (!program.is_ok()) {
    std::fprintf(stderr, "%s: %s\n", source_path,
                 program.status().to_string().c_str());
    return 1;
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (trace_path != nullptr) {
    tracer = std::make_unique<trace::Tracer>(trace_config);
  }

  core::Cluster cluster(config, tracer.get());
  if (const Status status = cluster.load(program.value()); !status.is_ok()) {
    std::fprintf(stderr, "load: %s\n", status.to_string().c_str());
    return 1;
  }
  auto run = cluster.run();

  if (tracer != nullptr) {
    // Export even on a failed run: the flight recorder's whole point is
    // seeing what led up to a deadlock / limit trip.
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    const std::string_view path(trace_path);
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".txt") {
      trace::write_text(*tracer, out);
    } else {
      trace::write_chrome_json(*tracer, out);
    }
    std::fprintf(stderr,
                 "[dqemu_run] trace: %zu records (%llu dropped) -> %s\n",
                 tracer->size(),
                 static_cast<unsigned long long>(tracer->dropped()),
                 trace_path);
  }

  if (!run.is_ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().to_string().c_str());
    return 1;
  }
  const auto& result = run.value();

  std::fputs(result.guest_stdout.c_str(), stdout);
  std::fprintf(stderr,
               "[dqemu_run] exit=%u  insns=%llu  virtual=%.6f s  nodes=%u\n",
               result.exit_code,
               static_cast<unsigned long long>(result.guest_insns),
               ps_to_seconds(result.sim_time), cluster.node_count());

  // DBT hot-path summary: how often each fast-path layer fired. The tlb/
  // jmp_cache/llsc counters are host-side only and stay zero when the fast
  // paths are disabled; chain_hit counts direct-jump chaining either way.
  {
    const auto& stats = cluster.stats();
    std::fprintf(
        stderr,
        "[dqemu_run] dbt: chain_hit=%llu jmp_cache_hit=%llu tlb_hit=%llu "
        "tlb_miss=%llu llsc_fastpath=%llu\n",
        static_cast<unsigned long long>(stats.get("dbt.chain_hit")),
        static_cast<unsigned long long>(stats.get("dbt.jmp_cache_hit")),
        static_cast<unsigned long long>(stats.get("dbt.tlb_hit")),
        static_cast<unsigned long long>(stats.get("dbt.tlb_miss")),
        static_cast<unsigned long long>(stats.get("dbt.llsc_fastpath")));

    // DSM optimization counters (page splitting / data forwarding / diff
    // transfers) and the hierarchical-locking counters; all zero when the
    // feature is off. bytes_on_wire counts data-plane payload traffic;
    // bytes_saved is what full-page transfers would have added on top.
    std::fprintf(
        stderr,
        "[dqemu_run] dsm: splits=%llu forwards=%llu diff_grants=%llu "
        "diff_writebacks=%llu bytes_on_wire=%llu bytes_saved=%llu\n",
        static_cast<unsigned long long>(stats.get("dir.splits")),
        static_cast<unsigned long long>(stats.get("dir.forwards")),
        static_cast<unsigned long long>(stats.get("dsm.diff_grants")),
        static_cast<unsigned long long>(stats.get("dsm.diff_writebacks")),
        static_cast<unsigned long long>(stats.get("dsm.bytes_on_wire")),
        static_cast<unsigned long long>(stats.get("dsm.bytes_saved")));
    std::fprintf(
        stderr,
        "[dqemu_run] lock: local_grants=%llu remote_grants=%llu "
        "async_wakes=%llu wake_batches=%llu leases=%llu recalls=%llu\n",
        static_cast<unsigned long long>(stats.get("sys.lock_local_grants")),
        static_cast<unsigned long long>(stats.get("sys.lock_remote_grants")),
        static_cast<unsigned long long>(stats.get("sys.lock_async_wakes")),
        static_cast<unsigned long long>(stats.get("sys.wake_batches")),
        static_cast<unsigned long long>(stats.get("sys.lease_grants")),
        static_cast<unsigned long long>(stats.get("sys.lease_recalls")));

    // Interconnect summary. The fault-model counters (dropped onward) stay
    // zero on the reliable wire.
    std::fprintf(
        stderr,
        "[dqemu_run] net: messages=%llu loopback=%llu dropped=%llu "
        "retrans=%llu dup_suppressed=%llu timeouts=%llu\n",
        static_cast<unsigned long long>(stats.get("net.messages")),
        static_cast<unsigned long long>(stats.get("net.loopback")),
        static_cast<unsigned long long>(stats.get("net.dropped")),
        static_cast<unsigned long long>(stats.get("net.retrans")),
        static_cast<unsigned long long>(stats.get("net.dup_suppressed")),
        static_cast<unsigned long long>(stats.get("dsm.timeouts")));
  }

  if (breakdown) {
    std::fprintf(stderr, "[dqemu_run] per-thread time (ms):\n");
    for (const auto& [tid, b] : result.per_thread) {
      std::fprintf(stderr,
                   "  tid %-4u node %-2u exec %8.3f  fault %8.3f  syscall "
                   "%8.3f  idle %8.3f\n",
                   tid, cluster.thread_node(tid),
                   ps_to_seconds(b.execute + b.translate) * 1e3,
                   ps_to_seconds(b.pagefault) * 1e3,
                   ps_to_seconds(b.syscall) * 1e3,
                   ps_to_seconds(b.idle) * 1e3);
    }
  }
  if (dump_stats) {
    std::fprintf(stderr, "[dqemu_run] counters:\n%s",
                 cluster.stats().to_string().c_str());
  }
  return static_cast<int>(result.exit_code);
}
