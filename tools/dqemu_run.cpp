// dqemu_run — command-line driver: assemble a GA32 source file and run it
// on a simulated DQEMU cluster, or drive the built-in request-serving
// workload (DESIGN.md §14) with --serve.
//
//   dqemu_run prog.s [options]
//   dqemu_run --serve [options]
//
// Every accepted option lives in kFlags below; the usage text is generated
// from the same table, so the two cannot drift apart (the CLI test checks
// that every flag appears in the usage output).
//
// Examples:
//   ./build/tools/dqemu_run examples/guest/hello.s --nodes 4 --stats
//   ./build/tools/dqemu_run examples/guest/pi.s --trace out.json
//   ./build/tools/dqemu_run --serve --nodes 4 --rate 8000 --requests 20000
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/log.hpp"
#include "core/cluster.hpp"
#include "isa/text_asm.hpp"
#include "serve/serve.hpp"
#include "trace/export.hpp"
#include "trace/tracer.hpp"
#include "workloads/serve.hpp"

using namespace dqemu;

namespace {

struct FlagSpec {
  const char* name;
  const char* metavar;  ///< null for boolean flags
  const char* help;
};

// The single source of truth for the option surface. The parser accepts
// exactly these names and usage() prints exactly these lines.
constexpr FlagSpec kFlags[] = {
    {"--nodes", "N", "slave nodes (default 2); 0 = QEMU single-node baseline"},
    {"--cores", "N", "cores per node (default 4)"},
    {"--quantum", "N", "instructions per scheduling slice (default 20000)"},
    {"--superblocks", nullptr,
     "enable the DBT superblock hot-trace tier (default; DESIGN.md §15)"},
    {"--no-superblocks", nullptr,
     "disable the hot-trace tier (virtual time is identical either way)"},
    {"--dump-hot", "N",
     "after the run, dump the N hottest blocks and all superblocks"},
    {"--rtt-us", "N", "network round-trip time in microseconds (default 55)"},
    {"--gbps", "X", "network bandwidth in Gbit/s (default 1.0)"},
    {"--forwarding", nullptr, "enable data forwarding (paper 5.2)"},
    {"--splitting", nullptr, "enable page splitting (paper 5.1)"},
    {"--dsm-diff", nullptr, "diff-encoded page transfers (DESIGN.md §12)"},
    {"--hier-locking", nullptr,
     "hierarchical distributed locking (DESIGN.md §11)"},
    {"--home-sharding", nullptr,
     "shard the DSM directory and futex table across per-page home nodes"
     " (DESIGN.md §17)"},
    {"--placement", "KIND",
     "home placement policy, hash | first-touch (default hash; needs"
     " --home-sharding)"},
    {"--host-threads", "N",
     "host threads driving the simulation (default 1; N > 1 runs the"
     " parallel scheduler, DESIGN.md §16 — results are byte-identical)"},
    {"--hint-sched", nullptr,
     "hint-based locality-aware scheduling (paper 5.3)"},
    {"--faults", nullptr,
     "deterministic fault injection + reliable delivery (DESIGN.md §13)"},
    {"--fault-seed", "N", "seed of the fault decision stream (default 1)"},
    {"--drop-pct", "X",
     "per-transmission drop probability, percent (default 0; implies"
     " --faults when > 0)"},
    {"--crash", "N@T",
     "crash slave node N at virtual time T microseconds; 0 for either means"
     " drawn from the fault seed (implies --faults; DESIGN.md §18)"},
    {"--pause", "N@T:D",
     "pause node N at T for D microseconds, then rejoin (0 = drawn; implies"
     " --faults)"},
    {"--giveup-retrans", "N",
     "declare a peer dead after N zero-progress retransmit rounds"
     " (default 0 = never give up)"},
    {"--checkpoint", "T:FILE",
     "fingerprint the cluster state at virtual time T microseconds and save"
     " the checkpoint image to FILE"},
    {"--restore", "FILE",
     "re-execute to FILE's checkpoint cut, verify every state digest"
     " matches (exit 1 on divergence), then continue the run"},
    {"--replay", "FILE",
     "like --restore but with the flight recorder armed: requires --trace,"
     " producing a verified replay trace of the checkpointed run"},
    {"--serve", nullptr,
     "run the built-in request-serving workload instead of a program"
     " (DESIGN.md §14)"},
    {"--requests", "N", "serving: total requests to issue (default 2000)"},
    {"--arrival", "KIND",
     "serving: arrival process, poisson | uniform | closed (default"
     " poisson)"},
    {"--rate", "X", "serving: open-loop offered load, req/s (default 2000)"},
    {"--clients", "N", "serving: closed-loop client count (default 16)"},
    {"--think-us", "N",
     "serving: closed-loop mean think time, microseconds (default 2000)"},
    {"--clone", "N",
     "serving: executions per request, first reply wins (default 1)"},
    {"--serve-workers", "N", "serving: guest worker threads (default 32)"},
    {"--serve-seed", "N", "serving: load-generator seed (default 7)"},
    {"--stats", nullptr, "dump all simulator counters after the run"},
    {"--breakdown", nullptr,
     "print per-thread execute/pagefault/syscall shares"},
    {"--trace", "FILE",
     "write a Chrome trace_event JSON (Perfetto / chrome://tracing); FILE"
     " ending in .txt gets the compact text dump"},
    {"--trace-categories", "LIST",
     "comma-separated subset of sim,core,net,dsm,sys,counter,queue,serve,dbt"
     " (or \"all\" / \"default\")"},
    {"--verbose", nullptr, "debug-level protocol logging"},
    {"--help", nullptr, "print this usage text"},
};

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <program.s> [options]\n"
               "       %s --serve [options]\n\noptions:\n",
               argv0, argv0);
  for (const FlagSpec& flag : kFlags) {
    char left[40];
    std::snprintf(left, sizeof left, "%s %s", flag.name,
                  flag.metavar != nullptr ? flag.metavar : "");
    std::fprintf(stderr, "  %-24s %s\n", left, flag.help);
  }
}

const FlagSpec* find_flag(const char* arg) {
  for (const FlagSpec& flag : kFlags) {
    if (std::strcmp(arg, flag.name) == 0) return &flag;
  }
  return nullptr;
}

bool parse_u32(const char* text, std::uint32_t* out) {
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0') return false;
  *out = static_cast<std::uint32_t>(value);
  return true;
}

/// "N@T[:D]" — node id, virtual time in microseconds, optional duration in
/// microseconds. Used by --crash (no :D) and --pause (requires :D).
bool parse_node_fault(const char* text, bool want_duration,
                      FaultConfig::NodeFault* out) {
  char* end = nullptr;
  const unsigned long node = std::strtoul(text, &end, 10);
  if (end == text || *end != '@') return false;
  const char* at_text = end + 1;
  const unsigned long long at_us = std::strtoull(at_text, &end, 10);
  if (end == at_text) return false;
  out->node = static_cast<std::uint32_t>(node);
  out->at = static_cast<TimePs>(at_us) * time_literals::kUs;
  if (!want_duration) return *end == '\0';
  if (*end != ':') return false;
  const char* dur_text = end + 1;
  const unsigned long long dur_us = std::strtoull(dur_text, &end, 10);
  if (end == dur_text || *end != '\0' || dur_us == 0) return false;
  out->pause_for = static_cast<DurationPs>(dur_us) * time_literals::kUs;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage(argv[0]);
    return 2;
  }
  const char* source_path = nullptr;
  ClusterConfig config;
  config.slave_nodes = 2;
  bool dump_stats = false;
  bool breakdown = false;
  std::uint32_t dump_hot = 0;
  const char* trace_path = nullptr;
  trace::TraceConfig trace_config;
  std::optional<TimePs> checkpoint_at;
  const char* checkpoint_path = nullptr;
  const char* restore_path = nullptr;
  bool replay = false;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (arg[0] != '-') {
      if (source_path != nullptr) {
        usage(argv[0]);
        return 2;
      }
      source_path = arg;
      continue;
    }
    const FlagSpec* spec = find_flag(arg);
    if (spec == nullptr) {
      std::fprintf(stderr, "unknown option: %s\n", arg);
      usage(argv[0]);
      return 2;
    }
    const char* value = nullptr;
    if (spec->metavar != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg);
        usage(argv[0]);
        return 2;
      }
      value = argv[++i];
    }
    // `ok` collects the value-parse outcomes so every branch shares one
    // error exit.
    bool ok = true;
    if (std::strcmp(arg, "--nodes") == 0) {
      std::uint32_t n = 0;
      ok = parse_u32(value, &n);
      if (ok) {
        config.single_node_baseline = (n == 0);
        config.slave_nodes = n;
      }
    } else if (std::strcmp(arg, "--cores") == 0) {
      ok = parse_u32(value, &config.machine.cores_per_node);
    } else if (std::strcmp(arg, "--quantum") == 0) {
      ok = parse_u32(value, &config.dbt.quantum_insns);
    } else if (std::strcmp(arg, "--superblocks") == 0) {
      config.dbt.enable_superblocks = true;
    } else if (std::strcmp(arg, "--no-superblocks") == 0) {
      config.dbt.enable_superblocks = false;
    } else if (std::strcmp(arg, "--dump-hot") == 0) {
      ok = parse_u32(value, &dump_hot);
    } else if (std::strcmp(arg, "--rtt-us") == 0) {
      std::uint32_t rtt = 0;
      ok = parse_u32(value, &rtt);
      if (ok) config.net.one_way_latency = rtt * time_literals::kUs / 2;
    } else if (std::strcmp(arg, "--gbps") == 0) {
      config.net.bandwidth_gbps = std::strtod(value, nullptr);
    } else if (std::strcmp(arg, "--forwarding") == 0) {
      config.dsm.enable_forwarding = true;
    } else if (std::strcmp(arg, "--splitting") == 0) {
      config.dsm.enable_splitting = true;
    } else if (std::strcmp(arg, "--dsm-diff") == 0) {
      config.dsm.enable_diff_transfers = true;
    } else if (std::strcmp(arg, "--hint-sched") == 0) {
      config.sched.policy = SchedPolicy::kHintLocality;
    } else if (std::strcmp(arg, "--hier-locking") == 0) {
      config.sys.enable_hierarchical_locking = true;
    } else if (std::strcmp(arg, "--home-sharding") == 0) {
      config.dsm.enable_home_sharding = true;
    } else if (std::strcmp(arg, "--placement") == 0) {
      if (std::strcmp(value, "hash") == 0) {
        config.dsm.home_placement = HomePlacement::kHash;
      } else if (std::strcmp(value, "first-touch") == 0) {
        config.dsm.home_placement = HomePlacement::kFirstTouch;
      } else {
        std::fprintf(stderr, "bad --placement %s (want hash or first-touch)\n",
                     value);
        return 2;
      }
    } else if (std::strcmp(arg, "--host-threads") == 0) {
      ok = parse_u32(value, &config.sim.host_threads);
    } else if (std::strcmp(arg, "--faults") == 0) {
      config.faults.enabled = true;
    } else if (std::strcmp(arg, "--fault-seed") == 0) {
      std::uint32_t seed = 0;
      ok = parse_u32(value, &seed);
      if (ok) config.faults.seed = seed;
    } else if (std::strcmp(arg, "--drop-pct") == 0) {
      config.faults.drop_pct = std::strtod(value, nullptr);
      if (config.faults.drop_pct > 0.0) config.faults.enabled = true;
    } else if (std::strcmp(arg, "--crash") == 0) {
      FaultConfig::NodeFault nf;
      nf.kind = FaultConfig::NodeFault::Kind::kCrash;
      ok = parse_node_fault(value, /*want_duration=*/false, &nf);
      if (ok) {
        config.faults.node_faults.push_back(nf);
        config.faults.enabled = true;
      }
    } else if (std::strcmp(arg, "--pause") == 0) {
      FaultConfig::NodeFault nf;
      nf.kind = FaultConfig::NodeFault::Kind::kPause;
      ok = parse_node_fault(value, /*want_duration=*/true, &nf);
      if (ok) {
        config.faults.node_faults.push_back(nf);
        config.faults.enabled = true;
      }
    } else if (std::strcmp(arg, "--giveup-retrans") == 0) {
      ok = parse_u32(value, &config.faults.giveup_retrans);
    } else if (std::strcmp(arg, "--checkpoint") == 0) {
      char* end = nullptr;
      const unsigned long long at_us = std::strtoull(value, &end, 10);
      ok = end != value && *end == ':' && end[1] != '\0' && at_us > 0;
      if (ok) {
        checkpoint_at = static_cast<TimePs>(at_us) * time_literals::kUs;
        checkpoint_path = end + 1;
      }
    } else if (std::strcmp(arg, "--restore") == 0) {
      restore_path = value;
    } else if (std::strcmp(arg, "--replay") == 0) {
      restore_path = value;
      replay = true;
    } else if (std::strcmp(arg, "--serve") == 0) {
      config.serve.enabled = true;
    } else if (std::strcmp(arg, "--requests") == 0) {
      ok = parse_u32(value, &config.serve.requests);
    } else if (std::strcmp(arg, "--arrival") == 0) {
      if (std::strcmp(value, "poisson") == 0) {
        config.serve.arrival = ArrivalProcess::kPoisson;
      } else if (std::strcmp(value, "uniform") == 0) {
        config.serve.arrival = ArrivalProcess::kUniform;
      } else if (std::strcmp(value, "closed") == 0) {
        config.serve.arrival = ArrivalProcess::kClosed;
      } else {
        std::fprintf(stderr,
                     "bad --arrival %s (want poisson, uniform or closed)\n",
                     value);
        return 2;
      }
    } else if (std::strcmp(arg, "--rate") == 0) {
      config.serve.rate = std::strtod(value, nullptr);
    } else if (std::strcmp(arg, "--clients") == 0) {
      ok = parse_u32(value, &config.serve.clients);
    } else if (std::strcmp(arg, "--think-us") == 0) {
      std::uint32_t think_us = 0;
      ok = parse_u32(value, &think_us);
      if (ok) config.serve.think_mean = think_us * time_literals::kUs;
    } else if (std::strcmp(arg, "--clone") == 0) {
      ok = parse_u32(value, &config.serve.clones);
    } else if (std::strcmp(arg, "--serve-workers") == 0) {
      ok = parse_u32(value, &config.serve.workers);
    } else if (std::strcmp(arg, "--serve-seed") == 0) {
      std::uint32_t seed = 0;
      ok = parse_u32(value, &seed);
      if (ok) config.serve.seed = seed;
    } else if (std::strcmp(arg, "--stats") == 0) {
      dump_stats = true;
    } else if (std::strcmp(arg, "--breakdown") == 0) {
      breakdown = true;
    } else if (std::strcmp(arg, "--trace") == 0) {
      trace_path = value;
    } else if (std::strcmp(arg, "--trace-categories") == 0) {
      const auto mask = trace::parse_categories(value);
      if (!mask.has_value()) {
        std::fprintf(stderr,
                     "bad --trace-categories (want e.g. net,dsm,sys or"
                     " all/default)\n");
        return 2;
      }
      trace_config.categories = *mask;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      set_log_level(LogLevel::kDebug);
    } else if (std::strcmp(arg, "--help") == 0) {
      usage(argv[0]);
      return 0;
    }
    if (!ok) {
      std::fprintf(stderr, "bad value for %s\n", arg);
      usage(argv[0]);
      return 2;
    }
  }
  if (config.serve.enabled && source_path != nullptr) {
    std::fprintf(stderr,
                 "--serve runs the built-in worker pool; drop %s\n",
                 source_path);
    return 2;
  }
  if (!config.serve.enabled && source_path == nullptr) {
    usage(argv[0]);
    return 2;
  }
  if (config.serve.enabled && !serve::compiled_in()) {
    std::fprintf(stderr,
                 "serving plane compiled out (DQEMU_ENABLE_SERVING=OFF)\n");
    return 2;
  }
  if (const Status valid = config.validate(); !valid.is_ok()) {
    std::fprintf(stderr, "bad configuration: %s\n", valid.to_string().c_str());
    return 2;
  }
  if (replay && trace_path == nullptr) {
    std::fprintf(stderr,
                 "--replay needs --trace FILE (it re-executes the "
                 "checkpointed run with the flight recorder armed)\n");
    return 2;
  }
  if (checkpoint_at.has_value() && restore_path != nullptr) {
    std::fprintf(stderr, "--checkpoint and --restore/--replay are exclusive\n");
    return 2;
  }
  std::optional<core::CheckpointImage> restore_image;
  if (restore_path != nullptr) {
    restore_image.emplace();
    if (!restore_image->load(restore_path)) {
      std::fprintf(stderr, "cannot read checkpoint image %s\n", restore_path);
      return 1;
    }
  }

  Result<isa::Program> program = [&]() -> Result<isa::Program> {
    if (config.serve.enabled) {
      workloads::ServePoolParams pool;
      pool.workers = config.serve.workers;
      return workloads::serve_pool(pool);
    }
    std::ifstream in(source_path);
    if (!in) {
      return Status::not_found(std::string("cannot open ") + source_path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    return isa::assemble_text(text.str());
  }();
  if (!program.is_ok()) {
    std::fprintf(stderr, "%s: %s\n",
                 source_path != nullptr ? source_path : "--serve",
                 program.status().to_string().c_str());
    return 1;
  }

  std::unique_ptr<trace::Tracer> tracer;
  if (trace_path != nullptr) {
    tracer = std::make_unique<trace::Tracer>(trace_config);
  }

  core::Cluster cluster(config, tracer.get());
  if (checkpoint_at.has_value()) cluster.arm_checkpoint(*checkpoint_at);
  if (restore_image.has_value()) {
    // Restore = deterministic re-execution to the image's cut; the armed
    // capture there is compared digest-for-digest against the image below.
    cluster.arm_checkpoint(restore_image->virtual_time);
  }
  if (const Status status = cluster.load(program.value()); !status.is_ok()) {
    std::fprintf(stderr, "load: %s\n", status.to_string().c_str());
    return 1;
  }
  const auto host_start = std::chrono::steady_clock::now();
  auto run = cluster.run();
  const double host_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    host_start)
          .count();

  if (tracer != nullptr) {
    // Export even on a failed run: the flight recorder's whole point is
    // seeing what led up to a deadlock / limit trip.
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", trace_path);
      return 1;
    }
    const std::string_view path(trace_path);
    if (path.size() >= 4 && path.substr(path.size() - 4) == ".txt") {
      trace::write_text(*tracer, out);
    } else {
      trace::write_chrome_json(*tracer, out);
    }
    std::fprintf(stderr,
                 "[dqemu_run] trace: %zu records (%llu dropped) -> %s\n",
                 tracer->size(),
                 static_cast<unsigned long long>(tracer->dropped()),
                 trace_path);
  }

  if (!run.is_ok()) {
    std::fprintf(stderr, "run: %s\n", run.status().to_string().c_str());
    return 1;
  }
  const auto& result = run.value();

  std::fputs(result.guest_stdout.c_str(), stdout);
  std::fprintf(stderr,
               "[dqemu_run] exit=%u  insns=%llu  virtual=%.6f s  nodes=%u\n",
               result.exit_code,
               static_cast<unsigned long long>(result.guest_insns),
               ps_to_seconds(result.sim_time), cluster.node_count());
  // Host-side cost of the run: wall-clock seconds and the simulation rate
  // in guest MIPS. This is what --host-threads buys; virtual time above is
  // independent of it by construction.
  std::fprintf(stderr,
               "[dqemu_run] host: wall=%.3f s  guest-mips=%.2f  "
               "host-threads=%u\n",
               host_seconds,
               host_seconds > 0.0
                   ? static_cast<double>(result.guest_insns) / host_seconds /
                         1e6
                   : 0.0,
               config.sim.host_threads);

  // DBT hot-path summary: how often each fast-path layer fired. The tlb/
  // jmp_cache/llsc counters are host-side only and stay zero when the fast
  // paths are disabled; chain_hit counts direct-jump chaining either way.
  {
    const auto& stats = cluster.stats();
    std::fprintf(
        stderr,
        "[dqemu_run] dbt: chain_hit=%llu jmp_cache_hit=%llu tlb_hit=%llu "
        "tlb_miss=%llu llsc_fastpath=%llu\n",
        static_cast<unsigned long long>(stats.get("dbt.chain_hit")),
        static_cast<unsigned long long>(stats.get("dbt.jmp_cache_hit")),
        static_cast<unsigned long long>(stats.get("dbt.tlb_hit")),
        static_cast<unsigned long long>(stats.get("dbt.tlb_miss")),
        static_cast<unsigned long long>(stats.get("dbt.llsc_fastpath")));

    // Superblock hot-trace tier (DESIGN.md §15). All host-side: the
    // counters stay zero with --no-superblocks or the tier compiled out,
    // while virtual time is byte-identical.
    std::fprintf(
        stderr,
        "[dqemu_run] sb: formed=%llu invalidated=%llu exec=%llu "
        "side_exit=%llu fused_ops=%llu\n",
        static_cast<unsigned long long>(stats.get("dbt.sb_formed")),
        static_cast<unsigned long long>(stats.get("dbt.sb_invalidated")),
        static_cast<unsigned long long>(stats.get("dbt.sb_exec")),
        static_cast<unsigned long long>(stats.get("dbt.sb_side_exit")),
        static_cast<unsigned long long>(stats.get("dbt.fused_ops")));

    // DSM optimization counters (page splitting / data forwarding / diff
    // transfers) and the hierarchical-locking counters; all zero when the
    // feature is off. bytes_on_wire counts data-plane payload traffic;
    // bytes_saved is what full-page transfers would have added on top.
    std::fprintf(
        stderr,
        "[dqemu_run] dsm: splits=%llu forwards=%llu diff_grants=%llu "
        "diff_writebacks=%llu bytes_on_wire=%llu bytes_saved=%llu\n",
        static_cast<unsigned long long>(stats.get("dir.splits")),
        static_cast<unsigned long long>(stats.get("dir.forwards")),
        static_cast<unsigned long long>(stats.get("dsm.diff_grants")),
        static_cast<unsigned long long>(stats.get("dsm.diff_writebacks")),
        static_cast<unsigned long long>(stats.get("dsm.bytes_on_wire")),
        static_cast<unsigned long long>(stats.get("dsm.bytes_saved")));
    std::fprintf(
        stderr,
        "[dqemu_run] lock: local_grants=%llu remote_grants=%llu "
        "async_wakes=%llu wake_batches=%llu leases=%llu recalls=%llu\n",
        static_cast<unsigned long long>(stats.get("sys.lock_local_grants")),
        static_cast<unsigned long long>(stats.get("sys.lock_remote_grants")),
        static_cast<unsigned long long>(stats.get("sys.lock_async_wakes")),
        static_cast<unsigned long long>(stats.get("sys.wake_batches")),
        static_cast<unsigned long long>(stats.get("sys.lease_grants")),
        static_cast<unsigned long long>(stats.get("sys.lease_recalls")));

    // Home-sharding summary (DESIGN.md §17): how evenly directory traffic
    // spread across the per-page home nodes. spread = max/min over the
    // slave homes; 1.0 is perfectly even. relays counts first-touch
    // requests the master re-addressed to the true home.
    if (config.dsm.enable_home_sharding) {
      std::uint64_t lo = 0;
      std::uint64_t hi = 0;
      std::uint64_t total = 0;
      std::uint32_t active = 0;
      for (std::uint32_t n = 1; n < cluster.node_count(); ++n) {
        const std::uint64_t msgs =
            stats.get("dsm.home_msgs." + std::to_string(n));
        total += msgs;
        if (msgs == 0) continue;
        ++active;
        if (lo == 0 || msgs < lo) lo = msgs;
        if (msgs > hi) hi = msgs;
      }
      std::fprintf(
          stderr,
          "[dqemu_run] homes: active=%u/%u msgs=%llu min=%llu max=%llu "
          "spread=%.2f relays=%llu\n",
          active, cluster.node_count() - 1,
          static_cast<unsigned long long>(total),
          static_cast<unsigned long long>(lo),
          static_cast<unsigned long long>(hi),
          lo > 0 ? static_cast<double>(hi) / static_cast<double>(lo) : 0.0,
          static_cast<unsigned long long>(stats.get("dsm.home_relays")));
    }

    // Interconnect summary. The fault-model counters (dropped onward) stay
    // zero on the reliable wire.
    std::fprintf(
        stderr,
        "[dqemu_run] net: messages=%llu loopback=%llu dropped=%llu "
        "retrans=%llu dup_suppressed=%llu timeouts=%llu\n",
        static_cast<unsigned long long>(stats.get("net.messages")),
        static_cast<unsigned long long>(stats.get("net.loopback")),
        static_cast<unsigned long long>(stats.get("net.dropped")),
        static_cast<unsigned long long>(stats.get("net.retrans")),
        static_cast<unsigned long long>(stats.get("net.dup_suppressed")),
        static_cast<unsigned long long>(stats.get("dsm.timeouts")));

    // Whole-node fault plane (DESIGN.md §18): which nodes died and what the
    // recovery machinery did about it.
    if (!config.faults.node_faults.empty() ||
        config.faults.giveup_retrans > 0) {
      std::string dead;
      for (const NodeId id : cluster.dead_nodes()) {
        if (!dead.empty()) dead += ",";
        dead += std::to_string(id);
      }
      std::fprintf(
          stderr,
          "[dqemu_run] faults: dead=[%s] crashes=%llu pauses=%llu "
          "flushes=%llu rehomed=%llu leases_returned=%llu peer_dead=%llu\n",
          dead.c_str(),
          static_cast<unsigned long long>(stats.get("core.node_crashes")),
          static_cast<unsigned long long>(stats.get("core.node_pauses")),
          static_cast<unsigned long long>(
              stats.get("core.crash_flushes_sent")),
          static_cast<unsigned long long>(
              stats.get("core.threads_rehomed_sent")),
          static_cast<unsigned long long>(
              stats.get("sys.crash_lease_returns")),
          static_cast<unsigned long long>(stats.get("net.peer_dead")));
    }

    // Serving-plane summary (DESIGN.md §14): offered vs served load and
    // the tail of the latency distribution.
    if (config.serve.enabled) {
      const LogHistogram* lat = stats.find_histogram("serve.latency_ns");
      const double sim_seconds = ps_to_seconds(result.sim_time);
      const auto retired = stats.get("serve.retired");
      const double throughput =
          sim_seconds > 0.0 ? static_cast<double>(retired) / sim_seconds : 0.0;
      auto ms = [&](double q) {
        return lat != nullptr && !lat->empty()
                   ? static_cast<double>(lat->quantile(q)) / 1e6
                   : 0.0;
      };
      std::fprintf(
          stderr,
          "[dqemu_run] serve: requests=%llu retired=%llu executions=%llu "
          "checksum_errors=%llu throughput=%.1f req/s p50=%.3fms p99=%.3fms "
          "p999=%.3fms max=%.3fms\n",
          static_cast<unsigned long long>(stats.get("serve.requests")),
          static_cast<unsigned long long>(retired),
          static_cast<unsigned long long>(stats.get("serve.executions")),
          static_cast<unsigned long long>(stats.get("serve.checksum_errors")),
          throughput, ms(0.5), ms(0.99), ms(0.999),
          lat != nullptr && !lat->empty()
              ? static_cast<double>(lat->max()) / 1e6
              : 0.0);
    }
  }

  if (breakdown) {
    std::fprintf(stderr, "[dqemu_run] per-thread time (ms):\n");
    for (const auto& [tid, b] : result.per_thread) {
      std::fprintf(stderr,
                   "  tid %-4u node %-2u exec %8.3f  fault %8.3f  syscall "
                   "%8.3f  idle %8.3f\n",
                   tid, cluster.thread_node(tid),
                   ps_to_seconds(b.execute + b.translate) * 1e3,
                   ps_to_seconds(b.pagefault) * 1e3,
                   ps_to_seconds(b.syscall) * 1e3,
                   ps_to_seconds(b.idle) * 1e3);
    }
  }
  if (dump_stats) {
    std::fprintf(stderr, "[dqemu_run] counters:\n%s",
                 cluster.stats().to_string().c_str());
  }
  if (dump_hot > 0) {
    // Hot-block census across every node's translation cache, hottest
    // first, plus every live superblock. Per-block hot counters advance
    // whether or not the block migrated onto a trace, so this is useful
    // with --no-superblocks too (what *would* the tier pick up?).
    std::vector<std::pair<NodeId, dbt::HotBlockInfo>> blocks;
    std::vector<std::pair<NodeId, dbt::SuperblockInfo>> sbs;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      for (const dbt::HotBlockInfo& b : cluster.node(n).tcache().hot_census())
        blocks.emplace_back(n, b);
      for (const dbt::SuperblockInfo& s :
           cluster.node(n).tcache().superblock_census())
        sbs.emplace_back(n, s);
    }
    std::sort(blocks.begin(), blocks.end(), [](const auto& x, const auto& y) {
      return x.second.hot_count > y.second.hot_count;
    });
    std::sort(sbs.begin(), sbs.end(), [](const auto& x, const auto& y) {
      return x.second.exec_count > y.second.exec_count;
    });
    std::fprintf(stderr, "[dqemu_run] hottest blocks (top %u of %zu):\n",
                 dump_hot, blocks.size());
    for (std::size_t i = 0; i < blocks.size() && i < dump_hot; ++i) {
      const auto& [n, b] = blocks[i];
      std::fprintf(stderr,
                   "  node %-2u pc 0x%08x  insns %-3u hot %-10llu %s\n", n,
                   b.pc, b.insns,
                   static_cast<unsigned long long>(b.hot_count),
                   b.has_sb ? "[sb]" : "");
    }
    std::fprintf(stderr, "[dqemu_run] superblocks (%zu):\n", sbs.size());
    for (const auto& [n, s] : sbs) {
      std::fprintf(stderr,
                   "  node %-2u entry 0x%08x  blocks %-2u insns %-3u "
                   "fused %-2u %s exec %-10llu side_exits %llu\n",
                   n, s.entry_pc, s.blocks, s.insns, s.fused_pairs,
                   s.loops ? "loop    " : "straight",
                   static_cast<unsigned long long>(s.exec_count),
                   static_cast<unsigned long long>(s.side_exits));
    }
  }
  if (checkpoint_path != nullptr) {
    const auto& image = cluster.checkpoint_image();
    if (!image.has_value()) {
      std::fprintf(stderr,
                   "checkpoint: guest finished at %.6f s, before the armed "
                   "%.6f s cut\n",
                   ps_to_seconds(result.sim_time),
                   ps_to_seconds(*checkpoint_at));
      return 1;
    }
    if (!image->save(checkpoint_path)) {
      std::fprintf(stderr, "cannot write %s\n", checkpoint_path);
      return 1;
    }
    std::fprintf(stderr,
                 "[dqemu_run] checkpoint: t=%.6f s  %zu digests -> %s\n",
                 ps_to_seconds(image->virtual_time), image->digests.size(),
                 checkpoint_path);
  }
  if (restore_image.has_value()) {
    const char* mode = replay ? "replay" : "restore";
    const auto& image = cluster.checkpoint_image();
    if (!image.has_value()) {
      std::fprintf(stderr,
                   "%s: guest finished at %.6f s, before the image's %.6f s "
                   "cut — wrong program or config?\n",
                   mode, ps_to_seconds(result.sim_time),
                   ps_to_seconds(restore_image->virtual_time));
      return 1;
    }
    const std::vector<std::string> mismatched = restore_image->diff(*image);
    if (!mismatched.empty()) {
      std::fprintf(stderr, "%s: state diverged from the checkpoint at %.6f s:\n",
                   mode, ps_to_seconds(image->virtual_time));
      for (const std::string& name : mismatched) {
        std::fprintf(stderr, "  digest mismatch: %s\n", name.c_str());
      }
      return 1;
    }
    std::fprintf(stderr,
                 "[dqemu_run] %s: verified %zu digests at t=%.6f s (match)\n",
                 mode, image->digests.size(),
                 ps_to_seconds(image->virtual_time));
  }
  return static_cast<int>(result.exit_code);
}
