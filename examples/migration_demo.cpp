// Domain example: remote thread migration (paper section 4.1).
//
//   $ ./build/examples/migration_demo
//
// Spawns compute workers across a 3-slave cluster, then live-migrates one
// of them to a different node mid-run: the CPU context travels as a
// message, the thread resumes remotely, and its working set follows
// page-by-page through the coherence protocol. The demo prints the
// placement before and after plus the DSM traffic the move generated.
#include <cstdio>

#include "core/cluster.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;

int main() {
  // Long-running pi workers so the migration happens mid-computation.
  auto program = workloads::pi_taylor(/*threads=*/6, /*reps=*/3000,
                                      /*terms=*/1000);
  if (!program.is_ok()) {
    std::fprintf(stderr, "%s\n", program.status().to_string().c_str());
    return 1;
  }

  ClusterConfig config;
  config.slave_nodes = 3;
  core::Cluster cluster(config);
  if (!cluster.load(program.value()).is_ok()) return 1;

  // Let the main thread spawn everyone, then pause the world.
  (void)cluster.queue().run(2000);
  std::printf("placement after spawn:\n");
  for (GuestTid tid = 2; tid <= 7; ++tid) {
    std::printf("  worker tid %u on node %u\n", tid, cluster.thread_node(tid));
  }

  const GuestTid victim = 3;
  const NodeId from = cluster.thread_node(victim);
  const NodeId to = static_cast<NodeId>(from % 3 + 1);
  std::printf("\nmigrating tid %u: node %u -> node %u ...\n", victim, from, to);
  if (const auto status = cluster.migrate_thread(victim, to); !status.is_ok()) {
    std::fprintf(stderr, "migrate: %s\n", status.to_string().c_str());
    return 1;
  }

  auto result = cluster.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("tid %u finished on node %u\n", victim,
              cluster.thread_node(victim));
  std::printf("guest stdout: %s", result.value().guest_stdout.c_str());
  std::printf("migrations sent: %llu, page faults total: %llu\n",
              static_cast<unsigned long long>(
                  cluster.stats().get("core.migrations_sent")),
              static_cast<unsigned long long>(
                  cluster.stats().get("core.page_faults")));
  std::printf("virtual time: %.3f ms\n",
              ps_to_seconds(result.value().sim_time) * 1e3);
  return 0;
}
