// Quickstart: assemble a guest program from text assembly and run it on a
// DQEMU cluster with one master and two slave nodes.
//
//   $ ./build/examples/quickstart
//
// The guest computes 10! iteratively, prints it via write(), and exits.
// Everything the guest does — translation, execution, page movement,
// syscall delegation — happens inside the simulated cluster; the host
// program just loads the image and reads the results.
#include <cstdio>

#include "core/cluster.hpp"
#include "isa/text_asm.hpp"

int main() {
  // GA32 text assembly: see src/isa/text_asm.hpp for the dialect.
  constexpr const char* kGuestSource = R"(
      .entry main
  main:
      li   t0, 10          ; n
      li   t1, 1           ; acc
  loop:
      mul  t1, t1, t0
      addi t0, t0, -1
      bne  t0, zero, loop

      ; convert acc to decimal into buf (backwards)
      la   t2, buf_end
      li   t3, 10
  digits:
      remu t4, t1, t3
      addi t4, t4, 48
      addi t2, t2, -1
      sb   t4, 0(t2)
      divu t1, t1, t3
      bne  t1, zero, digits

      ; write(1, t2, buf_end + 1 - t2)  (include the newline byte)
      la   a2, buf_end
      addi a2, a2, 1
      sub  a2, a2, t2
      mov  a1, t2
      li   a0, 1
      syscall 2            ; SYS_write

      li   a0, 0
      syscall 15           ; SYS_exit_group
      .data
  buf:  .space 16
  buf_end:
      .byte 10             ; trailing newline
  )";

  auto program = dqemu::isa::assemble_text(kGuestSource);
  if (!program.is_ok()) {
    std::fprintf(stderr, "assembly failed: %s\n",
                 program.status().to_string().c_str());
    return 1;
  }

  dqemu::ClusterConfig config;
  config.slave_nodes = 2;  // master + 2 slaves, 4 simulated cores each
  dqemu::core::Cluster cluster(config);

  if (const auto status = cluster.load(program.value()); !status.is_ok()) {
    std::fprintf(stderr, "load failed: %s\n", status.to_string().c_str());
    return 1;
  }
  auto result = cluster.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("guest stdout : %s\n", result.value().guest_stdout.c_str());
  std::printf("exit code    : %u\n", result.value().exit_code);
  std::printf("guest insns  : %llu\n",
              static_cast<unsigned long long>(result.value().guest_insns));
  std::printf("virtual time : %.3f ms\n",
              dqemu::ps_to_seconds(result.value().sim_time) * 1e3);
  return 0;
}
