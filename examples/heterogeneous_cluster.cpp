// Domain example: a heterogeneous DQEMU cluster (the paper's introduction:
// DBT lets "nodes in a cluster have different kinds of physical cores").
//
//   $ ./build/examples/heterogeneous_cluster
//
// Builds a cluster whose slaves differ in core count and clock (one big
// server, one mid node, one small node) and runs the pi workload twice:
// with naive equal spreading (simulated by forcing uniform weights via a
// uniform cluster of the same total capacity) and with capacity-weighted
// placement. The weighted run finishes with all nodes draining together.
#include <cstdio>

#include "core/cluster.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;

int main() {
  auto program = workloads::pi_taylor(/*threads=*/48, /*reps=*/600,
                                      /*terms=*/1000);
  if (!program.is_ok()) return 1;

  // Heterogeneous: master + big (8 cores @3.3) + mid (4 @3.3) + small (2 @2.0).
  ClusterConfig hetero;
  hetero.slave_nodes = 3;
  hetero.node_machines.resize(4);
  hetero.node_machines[0] = hetero.machine;                   // master
  hetero.node_machines[1] = {3.3, 8, 4096};
  hetero.node_machines[2] = {3.3, 4, 4096};
  hetero.node_machines[3] = {2.0, 2, 4096};

  core::Cluster cluster(hetero);
  if (!cluster.load(program.value()).is_ok()) return 1;
  auto result = cluster.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
    return 1;
  }

  // Thread census per node.
  unsigned census[4] = {};
  for (GuestTid tid = 2; tid <= 49; ++tid) {
    const NodeId node = cluster.thread_node(tid);
    if (node < 4) ++census[node];
  }
  std::printf("heterogeneous cluster (8 + 4 + 2 cores):\n");
  for (NodeId n = 1; n <= 3; ++n) {
    std::printf("  node %u (%u cores @ %.1f GHz): %u guest threads\n", n,
                hetero.node_machines[n].cores_per_node,
                hetero.node_machines[n].cpu_ghz, census[n]);
  }
  std::printf("  virtual time: %.3f ms\n",
              ps_to_seconds(result.value().sim_time) * 1e3);

  // Reference: the same total capacity as a uniform cluster.
  ClusterConfig uniform;
  uniform.slave_nodes = 3;
  core::Cluster uniform_cluster(uniform);
  if (!uniform_cluster.load(program.value()).is_ok()) return 1;
  auto uniform_result = uniform_cluster.run();
  if (!uniform_result.is_ok()) return 1;
  std::printf("uniform 3x4-core cluster for comparison: %.3f ms\n",
              ps_to_seconds(uniform_result.value().sim_time) * 1e3);
  return 0;
}
