// Domain example: watching the DSM protocol react to false sharing
// (paper section 5.1).
//
//   $ ./build/examples/dsm_inspector
//
// Runs the false-sharing micro-workload (8 threads writing 128-byte
// sections of ONE page across 4 nodes) twice — with page splitting off
// and on — and dumps the directory's view: page states, the split event,
// and the invalidation traffic that disappears once the page is split
// into shadow pages.
#include <cstdio>

#include "core/cluster.hpp"
#include "workloads/micro.hpp"

using namespace dqemu;

namespace {

const char* state_name(dsm::Directory::PageState state) {
  switch (state) {
    case dsm::Directory::PageState::kHome: return "Home";
    case dsm::Directory::PageState::kShared: return "Shared";
    case dsm::Directory::PageState::kModified: return "Modified";
    case dsm::Directory::PageState::kSplit: return "Split";
  }
  return "?";
}

void run_once(bool splitting) {
  auto program = workloads::false_sharing_walk(/*threads=*/8,
                                               /*section_bytes=*/512,
                                               /*reps=*/400, /*nodes=*/4);
  if (!program.is_ok()) return;

  ClusterConfig config;
  config.slave_nodes = 4;
  config.sched.policy = SchedPolicy::kHintLocality;
  config.dsm.enable_splitting = splitting;
  core::Cluster cluster(config);
  if (!cluster.load(program.value()).is_ok()) return;
  auto result = cluster.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().to_string().c_str());
    return;
  }

  const GuestAddr page_addr = program.value().symbol("shared_page");
  const std::uint32_t page = page_addr / config.machine.page_size;
  dsm::Directory* directory = cluster.directory();

  std::printf("--- splitting %s ---\n", splitting ? "ON" : "OFF");
  std::printf("  shared page %u final state: %s\n", page,
              state_name(directory->state(page)));
  if (directory->state(page) == dsm::Directory::PageState::kSplit) {
    const auto shadows = cluster.node(1).shadow().shadow_pages(page);
    std::printf("  shadow pages:");
    for (const auto shadow : shadows) {
      std::printf(" %u(%s, owner n%u)", shadow,
                  state_name(directory->state(shadow)),
                  directory->owner(shadow));
    }
    std::printf("\n");
  }
  std::printf(
      "  virtual time %.3f ms | write reqs %llu | owner recalls %llu | "
      "invalidations %llu | splits %llu\n\n",
      ps_to_seconds(result.value().sim_time) * 1e3,
      static_cast<unsigned long long>(cluster.stats().get("dir.write_reqs")),
      static_cast<unsigned long long>(cluster.stats().get("dir.owner_recalls")),
      static_cast<unsigned long long>(
          cluster.stats().get("dsm.invalidations_received")),
      static_cast<unsigned long long>(cluster.stats().get("dir.splits")));
}

}  // namespace

int main() {
  std::printf(
      "8 threads on 4 nodes, each writing its own 512-byte section of one\n"
      "guest page (classic false sharing):\n\n");
  run_once(false);
  run_once(true);
  std::printf(
      "With splitting, each node ends up owning the shadow pages its\n"
      "threads write, and the invalidation ping-pong disappears.\n");
  return 0;
}
