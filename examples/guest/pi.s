; pi.s — threaded guest program for dqemu_run.
;
;   ./build/tools/dqemu_run examples/guest/pi.s --nodes 4 --trace pi.json
;
; Four worker threads estimate pi with the integer-only Leibniz series:
; worker w sums terms k = w, w+4, w+8, ... of (-1)^k * 4e6/(2k+1), 250
; terms each (k covers 0..999), then LL/SC-adds its partial sum into a
; shared total. The main thread clones the workers (one mmap'd stack
; each), joins them through their CLONE_CHILD_CLEARTID words with futex
; waits, and exits with total/1000 = 3140 (pi ~= 3.140589 after integer
; truncation) so the harness can check it. On a multi-node run the shared
; total and ctid words exercise the DSM protocol; the joins exercise
; cross-node futex wait -> wake chains.
    .entry main

main:
    li   s0, 0          ; worker index
spawn_loop:
    ; mmap a 4 KiB stack for the child
    li   a0, 4096
    syscall 8
    addi t0, a0, 4096   ; child sp = top of the mapping

    ; ctid[w] = 1 (cleared by the kernel when the child exits)
    la   t1, ctids
    slli t2, s0, 2
    add  t1, t1, t2
    li   t3, 1
    sw   t3, 0(t1)

    ; clone(flags=0, child_sp, &ctid[w]); child resumes here with a0 = 0
    li   a0, 0
    mov  a1, t0
    mov  a2, t1
    syscall 9
    beq  a0, zero, worker
    addi s0, s0, 1
    li   t0, 4
    bne  s0, t0, spawn_loop

    ; join: wait until ctid[w] drops to 0
    li   s0, 0
join_loop:
    la   t1, ctids
    slli t2, s0, 2
    add  t1, t1, t2
join_wait:
    lw   t3, 0(t1)
    beq  t3, zero, join_next
    mov  a0, t1
    li   a1, 0          ; FUTEX_WAIT
    mov  a2, t3
    syscall 10
    j    join_wait
join_next:
    addi s0, s0, 1
    li   t0, 4
    bne  s0, t0, join_loop

    ; write(1, done_msg, 21); exit_group(total / 1000)
    li   a0, 1
    la   a1, done_msg
    li   a2, 21
    syscall 2
    la   t0, total
    lw   a0, 0(t0)
    li   t1, 1000
    div  a0, a0, t1
    syscall 15

worker:
    ; s0 = worker index (inherited across clone)
    mov  t0, s0         ; k
    li   t1, 250        ; terms remaining
    li   t2, 0          ; partial sum
term_loop:
    slli t3, t0, 1
    addi t3, t3, 1      ; 2k+1
    li   t4, 4000000
    div  t4, t4, t3     ; term = 4e6/(2k+1)
    andi t3, t0, 1
    beq  t3, zero, term_add
    sub  t2, t2, t4
    j    term_next
term_add:
    add  t2, t2, t4
term_next:
    addi t0, t0, 4      ; k += thread count
    addi t1, t1, -1
    bne  t1, zero, term_loop

    ; total += partial, atomically
    la   t3, total
add_retry:
    ll   t4, t3
    add  t4, t4, t2
    sc   t0, t3, t4
    bne  t0, zero, add_retry

    ; exit(0) — clears ctid and wakes the joiner
    li   a0, 0
    syscall 1

    .data
done_msg: .asciz "pi: 4 workers joined\n"
        .align 4
total:  .word 0
ctids:  .word 0, 0, 0, 0
