; hello.s — sample guest program for dqemu_run.
;
;   ./build/tools/dqemu_run examples/guest/hello.s --nodes 2 --stats
;
; Prints a banner, sums the data table, prints nothing else (the sum goes
; to the exit code so the harness can check it: 1+2+...+8 = 36).
    .entry main

main:
    ; write(1, banner, banner_len)
    li   a0, 1
    la   a1, banner
    li   a2, 30
    syscall 2

    ; sum the table
    la   t0, table
    li   t1, 8          ; count
    li   t2, 0          ; sum
loop:
    lw   t3, 0(t0)
    add  t2, t2, t3
    addi t0, t0, 4
    addi t1, t1, -1
    bne  t1, zero, loop

    ; exit_group(sum)
    mov  a0, t2
    syscall 15

    .data
banner: .asciz "hello from a DQEMU guest :-)\n"
        .align 4
table:  .word 1, 2, 3, 4, 5, 6, 7, 8
