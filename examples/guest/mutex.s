; mutex.s — contended global-mutex guest for dqemu_run.
;
;   ./build/tools/dqemu_run examples/guest/mutex.s --nodes 4 --quantum 500
;   ./build/tools/dqemu_run examples/guest/mutex.s --nodes 4 --quantum 500 --hier-locking
;
; Thirty-two worker threads each take a shared futex mutex 2000 times and bump a
; counter inside the critical section, then the main thread joins them and
; exits with the counter value: exit=64000 iff the mutex provided mutual
; exclusion and no futex wakeup was lost. The mutex is the glibc three-state
; scheme (0 free, 1 locked, 2 locked-with-waiters): contenders mark the lock
; 2 and FUTEX_WAIT on 2; unlock stores 0 and issues FUTEX_WAKE only from
; state 2. Run with a small --quantum so threads are preempted inside the
; critical section and waiters actually park — that is the regime where
; --hier-locking (DESIGN.md section 11) collapses the lock-handoff round
; trips; compare the virtual= and lock: lines with the flag on and off.
    .entry main

main:
    li   s0, 0          ; worker index
spawn_loop:
    ; mmap a 4 KiB stack for the child
    li   a0, 4096
    syscall 8
    addi t0, a0, 4096   ; child sp = top of the mapping

    ; ctid[w] = 1 (cleared by the kernel when the child exits)
    la   t1, ctids
    slli t2, s0, 2
    add  t1, t1, t2
    li   t3, 1
    sw   t3, 0(t1)

    ; clone(flags=0, child_sp, &ctid[w]); child resumes here with a0 = 0
    li   a0, 0
    mov  a1, t0
    mov  a2, t1
    syscall 9
    beq  a0, zero, worker
    addi s0, s0, 1
    li   t0, 32
    bne  s0, t0, spawn_loop

    ; join: wait until ctid[w] drops to 0
    li   s0, 0
join_loop:
    la   t1, ctids
    slli t2, s0, 2
    add  t1, t1, t2
join_wait:
    lw   t3, 0(t1)
    beq  t3, zero, join_next
    mov  a0, t1
    li   a1, 0          ; FUTEX_WAIT
    mov  a2, t3
    syscall 10
    j    join_wait
join_next:
    addi s0, s0, 1
    li   t0, 32
    bne  s0, t0, join_loop

    ; write(1, done_msg, 24); exit_group(counter)
    li   a0, 1
    la   a1, done_msg
    li   a2, 25
    syscall 2
    la   t0, counter
    lw   a0, 0(t0)
    syscall 15

worker:
    li   s1, 2000       ; iterations
    la   s2, counter
w_loop:
    la   t0, mutex
l_fast:                 ; fast path: acquire free lock with 1
    ll   t1, t0
    bne  t1, zero, l_slow
    li   t2, 1
    sc   t3, t0, t2
    bne  t3, zero, l_fast
    j    l_acquired
l_slow:                 ; slow path: must acquire with 2 (waiters may be
    ll   t1, t0         ; parked; only state 2 makes unlock issue a wake)
    bne  t1, zero, l_mark
    li   t2, 2
    sc   t3, t0, t2
    bne  t3, zero, l_slow
    j    l_acquired
l_mark:
    li   t2, 2
    sc   t3, t0, t2     ; 1 -> 2; a failed sc is fine (value changed)
    mov  a0, t0
    li   a1, 0          ; FUTEX_WAIT while the word is 2
    li   a2, 2
    syscall 10
    j    l_slow
l_acquired:
    lw   t4, 0(s2)      ; critical section: counter++
    addi t4, t4, 1
    sw   t4, 0(s2)
u_retry:                ; unlock: swap in 0, wake iff the old value was 2
    ll   t1, t0
    sc   t3, t0, zero
    bne  t3, zero, u_retry
    li   t2, 2
    bne  t1, t2, u_done
    mov  a0, t0
    li   a1, 1          ; FUTEX_WAKE one waiter
    li   a2, 1
    syscall 10
u_done:
    addi s1, s1, -1
    bne  s1, zero, w_loop
    li   a0, 0          ; exit(0) — clears ctid and wakes the joiner
    syscall 1

    .data
done_msg: .asciz "mutex: 32 workers joined\n"
        .align 4
mutex:  .word 0
        .space 4092     ; the counter lives on its own page: the critical
counter: .word 0        ; section then spans a cross-node fault, so the
        .space 4092     ; lock is observably held and contenders park
ctids:  .space 128
