// Domain example: scaling a PARSEC-like blackscholes workload across the
// cluster and toggling the paper's optimizations.
//
//   $ ./build/examples/blackscholes_cluster
//
// Prints the virtual runtime at 1/2/4 slave nodes, with and without data
// forwarding + page splitting, plus the protocol counters that explain
// the difference — a miniature of the paper's Figure 7 methodology.
#include <cstdio>

#include "core/cluster.hpp"
#include "workloads/parsec.hpp"

using namespace dqemu;

namespace {

double run_once(std::uint32_t slaves, bool optimized,
                const isa::Program& program, StatsRegistry* stats_out) {
  ClusterConfig config;
  config.slave_nodes = slaves;
  config.dsm.enable_forwarding = optimized;
  config.dsm.enable_splitting = optimized;
  core::Cluster cluster(config);
  if (!cluster.load(program).is_ok()) return -1;
  auto result = cluster.run();
  if (!result.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().to_string().c_str());
    return -1;
  }
  if (stats_out != nullptr) *stats_out = cluster.stats();
  return ps_to_seconds(result.value().sim_time);
}

}  // namespace

int main() {
  workloads::BlackscholesParams params;
  params.threads = 32;
  params.options_n = 65536;
  params.reps = 12;
  auto program = workloads::blackscholes_like(params);
  if (!program.is_ok()) {
    std::fprintf(stderr, "%s\n", program.status().to_string().c_str());
    return 1;
  }

  std::printf("blackscholes-like: %u threads, %u options, %u passes\n",
              params.threads, params.options_n, params.reps);
  std::printf("%-8s %14s %18s %10s\n", "slaves", "origin_ms",
              "fwd+split_ms", "gain");
  for (const std::uint32_t slaves : {1u, 2u, 4u}) {
    StatsRegistry stats;
    const double origin = run_once(slaves, false, program.value(), nullptr);
    const double optimized = run_once(slaves, true, program.value(), &stats);
    if (origin < 0 || optimized < 0) return 1;
    std::printf("%-8u %14.3f %18.3f %9.1f%%\n", slaves, origin * 1e3,
                optimized * 1e3, 100.0 * (origin / optimized - 1.0));
    if (slaves == 4) {
      std::printf(
          "\nprotocol counters at 4 slaves (optimized):\n"
          "  page requests : %llu read, %llu write\n"
          "  pages pushed  : %llu (forwarding)\n"
          "  pages split   : %llu\n"
          "  network bytes : %.1f MB\n",
          static_cast<unsigned long long>(stats.get("dir.read_reqs")),
          static_cast<unsigned long long>(stats.get("dir.write_reqs")),
          static_cast<unsigned long long>(stats.get("dir.forwards")),
          static_cast<unsigned long long>(stats.get("dir.splits")),
          static_cast<double>(stats.get("net.bytes")) / 1e6);
    }
  }
  return 0;
}
